// Differential and property tests for the executing serving engine.
//
// The load-bearing claims, each enforced here:
//   * Batched continuous decode is bit-identical, per sequence, to running
//     the same sequences alone — for ragged contexts, any batch size, and
//     any thread count (the SpMM backend's per-column determinism composed
//     with per-sequence paged attention).
//   * The paged KV decode path reproduces full-recompute Generate bitwise.
//   * The engine's report is byte-stable across reruns and thread counts.
//   * The scheduler conserves requests, admits strict-FIFO, respects the KV
//     commitment cap, and matches the analytic simulator on its common
//     domain to floating-point accuracy.
#include "src/llm/serving_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "src/gpusim/device_spec.h"
#include "src/llm/serving.h"
#include "src/llm/tiny_transformer.h"
#include "src/pruning/magnitude.h"
#include "src/util/random.h"
#include "src/util/thread_pool.h"

namespace spinfer {
namespace {

TinyConfig TestModelConfig() {
  TinyConfig cfg;  // vocab 256, hidden 64, layers 2, heads 4, ffn 256, seq 64
  return cfg;
}

TinyTransformer MakePrunedModel(uint64_t seed = 7) {
  TinyTransformer model(TestModelConfig(), seed);
  model.PruneWeights(MagnitudePruner(), 0.6);
  return model;
}

std::vector<int32_t> RandomPrompt(Rng& rng, int64_t len, int64_t vocab) {
  std::vector<int32_t> p(static_cast<size_t>(len));
  for (int32_t& t : p) {
    t = static_cast<int32_t>(rng.Below(static_cast<uint64_t>(vocab)));
  }
  return p;
}

struct DecodeTrace {
  std::vector<int32_t> tokens;             // generated tokens, prefill first
  std::vector<std::vector<float>> logits;  // per decode step, vocab floats
};

// Runs `prompt` alone: prefill then `steps` batch-1 decode iterations against
// a private cache.
DecodeTrace RunSingle(const TinyTransformer& model,
                      const std::vector<int32_t>& prompt, int steps,
                      MatmulBackend backend) {
  PagedKvCache cache(model.KvCacheConfig(/*block_tokens=*/8, /*num_blocks=*/32));
  EXPECT_TRUE(cache.AddSequence(0, static_cast<int64_t>(prompt.size())));
  DecodeTrace trace;
  const FloatMatrix prefill = model.Prefill(prompt, backend, &cache, 0);
  trace.tokens.push_back(GreedyToken(prefill, prefill.rows() - 1));
  std::vector<int32_t> next;
  FloatMatrix logits;
  for (int s = 0; s < steps; ++s) {
    model.DecodeStep({0}, {trace.tokens.back()}, backend, &cache, &next, &logits);
    trace.tokens.push_back(next[0]);
    trace.logits.emplace_back(logits.data(), logits.data() + logits.size());
  }
  return trace;
}

// Runs all prompts together through one cache: prefills in order, then
// `steps` batched decode iterations.
std::vector<DecodeTrace> RunBatched(const TinyTransformer& model,
                                    const std::vector<std::vector<int32_t>>& prompts,
                                    int steps, MatmulBackend backend) {
  const int64_t n = static_cast<int64_t>(prompts.size());
  PagedKvCache cache(model.KvCacheConfig(/*block_tokens=*/8,
                                         /*num_blocks=*/16 * n));
  std::vector<DecodeTrace> traces(static_cast<size_t>(n));
  std::vector<int64_t> ids;
  std::vector<int32_t> last;
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_TRUE(
        cache.AddSequence(i, static_cast<int64_t>(prompts[i].size())));
    const FloatMatrix prefill = model.Prefill(prompts[i], backend, &cache, i);
    traces[i].tokens.push_back(GreedyToken(prefill, prefill.rows() - 1));
    ids.push_back(i);
    last.push_back(traces[i].tokens.back());
  }
  std::vector<int32_t> next;
  FloatMatrix logits;
  for (int s = 0; s < steps; ++s) {
    model.DecodeStep(ids, last, backend, &cache, &next, &logits);
    for (int64_t i = 0; i < n; ++i) {
      traces[i].tokens.push_back(next[i]);
      traces[i].logits.emplace_back(logits.data() + i * logits.cols(),
                                    logits.data() + (i + 1) * logits.cols());
      last[i] = next[i];
    }
  }
  return traces;
}

bool BitIdentical(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// The tentpole differential test: a sequence's token stream AND its logits
// are bit-identical whether it decodes alone or inside any ragged batch, at
// any thread count.
TEST(ServingEngineTest, BatchedDecodeBitIdenticalToSingleSequence) {
  const TinyTransformer model = MakePrunedModel();
  Rng rng(11);
  const std::vector<int64_t> prompt_lens = {3, 9, 16, 5, 12, 7, 20, 4};
  std::vector<std::vector<int32_t>> prompts;
  for (int64_t len : prompt_lens) {
    prompts.push_back(RandomPrompt(rng, len, model.config().vocab));
  }
  const int kSteps = 10;

  // Reference: every sequence alone, single-threaded.
  ThreadPool::SetGlobalThreads(1);
  std::vector<DecodeTrace> singles;
  for (const auto& p : prompts) {
    singles.push_back(RunSingle(model, p, kSteps, MatmulBackend::kTcaBmeCpu));
  }

  for (int threads : {1, 2, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    for (size_t batch : {size_t(2), size_t(3), prompts.size()}) {
      const std::vector<std::vector<int32_t>> subset(prompts.begin(),
                                                     prompts.begin() + batch);
      const std::vector<DecodeTrace> batched =
          RunBatched(model, subset, kSteps, MatmulBackend::kTcaBmeCpu);
      for (size_t i = 0; i < batch; ++i) {
        EXPECT_EQ(batched[i].tokens, singles[i].tokens)
            << "threads=" << threads << " batch=" << batch << " seq=" << i;
        ASSERT_EQ(batched[i].logits.size(), singles[i].logits.size());
        for (size_t s = 0; s < batched[i].logits.size(); ++s) {
          EXPECT_TRUE(BitIdentical(batched[i].logits[s], singles[i].logits[s]))
              << "threads=" << threads << " batch=" << batch << " seq=" << i
              << " step=" << s;
        }
      }
    }
  }
  ThreadPool::SetGlobalThreads(0);
}

// The paged KV decode path is exactly the full-recompute path: causal
// attention means position t's activations never depend on later positions,
// and the cache stores the FP32 K/V columns bit-for-bit.
TEST(ServingEngineTest, KvDecodeMatchesFullRecomputeGenerate) {
  const TinyTransformer model = MakePrunedModel();
  Rng rng(23);
  for (MatmulBackend backend :
       {MatmulBackend::kTcaBmeCpu, MatmulBackend::kDense}) {
    const std::vector<int32_t> prompt =
        RandomPrompt(rng, 10, model.config().vocab);
    const int kSteps = 12;
    const std::vector<int32_t> reference =
        model.Generate(prompt, kSteps + 1, backend);
    const DecodeTrace paged = RunSingle(model, prompt, kSteps, backend);
    const std::vector<int32_t> generated(reference.begin() + prompt.size(),
                                         reference.end());
    EXPECT_EQ(paged.tokens, generated);
  }
}

// After one warmup pass at the serving shapes, further decode steps perform
// zero heap allocations in the matmul path.
TEST(ServingEngineTest, DecodeStepAllocationFreeAfterWarmup) {
  const TinyTransformer model = MakePrunedModel();
  Rng rng(5);
  std::vector<std::vector<int32_t>> prompts;
  for (int i = 0; i < 8; ++i) {
    prompts.push_back(RandomPrompt(rng, 8, model.config().vocab));
  }
  PagedKvCache cache(model.KvCacheConfig(8, 64));
  std::vector<int64_t> ids;
  std::vector<int32_t> last;
  for (int64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(cache.AddSequence(i, 8));
    const FloatMatrix logits =
        model.Prefill(prompts[static_cast<size_t>(i)],
                      MatmulBackend::kTcaBmeCpu, &cache, i);
    ids.push_back(i);
    last.push_back(GreedyToken(logits, logits.rows() - 1));
  }
  const std::vector<int32_t> first = last;
  auto run_steps = [&](int n, std::vector<int32_t> cur) {
    std::vector<std::vector<int32_t>> streams(8);
    std::vector<int32_t> next;
    for (int s = 0; s < n; ++s) {
      model.DecodeStep(ids, cur, MatmulBackend::kTcaBmeCpu, &cache, &next);
      for (size_t i = 0; i < 8; ++i) {
        streams[i].push_back(next[i]);
      }
      cur = next;
    }
    return streams;
  };
  // Warmup pass: grows scratch to the batch-8 shapes, including the scores
  // buffer at the deepest context reached.
  const auto warm = run_steps(8, first);
  // Rewind the cache to the post-prefill state (the bench harness does the
  // same between reps) and replay: every shape has been seen, so the matmul
  // path must not allocate at all.
  for (int64_t i = 0; i < 8; ++i) {
    cache.TruncateSequence(i, 8);
  }
  const int64_t grow_before = model.MatmulScratchGrowCount();
  const uint64_t capacity_before = model.MatmulScratchCapacityBytes();
  const auto again = run_steps(8, first);
  EXPECT_EQ(model.MatmulScratchGrowCount(), grow_before);
  EXPECT_EQ(model.MatmulScratchCapacityBytes(), capacity_before);
  // Rewind + replay reproduces the streams exactly.
  EXPECT_EQ(again, warm);
}

ServingEngineConfig TestEngineConfig(const TinyConfig& model_cfg) {
  ServingEngineConfig cfg;
  cfg.max_batch = 4;
  cfg.kv_block_tokens = 8;
  cfg.kv_num_blocks = 32;
  cfg.cost.model = ModelConfigFor(model_cfg);
  cfg.cost.framework = Framework::kSpInfer;
  cfg.cost.device = Rtx4090();
  cfg.cost.sparsity = 0.6;
  return cfg;
}

PoissonTraffic RaggedTraffic(uint64_t seed) {
  PoissonTraffic t;
  t.arrival_rate_rps = 40.0;
  t.horizon_s = 1.0;
  t.seed = seed;
  t.prompt_len_min = 4;
  t.prompt_len_max = 12;
  t.max_new_min = 4;
  t.max_new_max = 10;
  return t;
}

// Identical per-request token streams and a byte-identical report for a
// fixed seed, across reruns and across thread counts.
TEST(ServingEngineTest, ReportByteStableAcrossRerunsAndThreads) {
  const TinyTransformer model = MakePrunedModel();
  auto run = [&]() {
    ServingEngine engine(&model, TestEngineConfig(model.config()));
    engine.InjectPoissonArrivals(RaggedTraffic(42));
    const ExecServingReport report = engine.Run();
    return std::make_pair(report.ToString(), engine.results());
  };

  ThreadPool::SetGlobalThreads(1);
  const auto baseline = run();
  EXPECT_GT(baseline.second.size(), 10u);

  for (int threads : {1, 2, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    const auto other = run();
    EXPECT_EQ(other.first, baseline.first) << "threads=" << threads;
    ASSERT_EQ(other.second.size(), baseline.second.size());
    for (size_t i = 0; i < baseline.second.size(); ++i) {
      EXPECT_EQ(other.second[i].generated, baseline.second[i].generated)
          << "threads=" << threads << " id=" << i;
      EXPECT_EQ(other.second[i].reason, baseline.second[i].reason);
      EXPECT_DOUBLE_EQ(other.second[i].latency_ms,
                       baseline.second[i].latency_ms);
    }
  }
  ThreadPool::SetGlobalThreads(0);
}

// EOS eviction frees the slot early and — because token streams are
// batch-composition-independent — every request's stream in the EOS run is
// exactly its baseline stream truncated at the first EOS occurrence.
TEST(ServingEngineTest, EosEvictsEarlyWithPrefixStreams) {
  const TinyTransformer model = MakePrunedModel();
  ServingEngineConfig cfg = TestEngineConfig(model.config());
  ServingEngine baseline(&model, cfg);
  baseline.InjectPoissonArrivals(RaggedTraffic(9));
  baseline.Run();

  // Pick an EOS token that actually occurs mid-stream somewhere.
  int32_t eos = -1;
  for (const RequestRecord& r : baseline.results()) {
    if (r.reason == FinishReason::kMaxTokens && r.generated.size() >= 3) {
      eos = r.generated[1];
      break;
    }
  }
  ASSERT_GE(eos, 0);

  cfg.eos_token = eos;
  ServingEngine engine(&model, cfg);
  engine.InjectPoissonArrivals(RaggedTraffic(9));
  const ExecServingReport report = engine.Run();

  int64_t eos_finishes = 0;
  ASSERT_EQ(engine.results().size(), baseline.results().size());
  for (size_t i = 0; i < engine.results().size(); ++i) {
    const RequestRecord& b = baseline.results()[i];
    const RequestRecord& r = engine.results()[i];
    std::vector<int32_t> expect = b.generated;
    const auto it = std::find(expect.begin(), expect.end(), eos);
    if (it != expect.end()) {
      expect.erase(it + 1, expect.end());
    }
    EXPECT_EQ(r.generated, expect) << "id=" << i;
    if (r.reason == FinishReason::kEos) {
      ++eos_finishes;
      EXPECT_EQ(r.generated.back(), eos);
      EXPECT_LE(r.generated.size(), b.generated.size());
    }
  }
  EXPECT_GT(eos_finishes, 0);
  EXPECT_EQ(report.completed + report.rejected, report.arrived);
}

// Scheduler properties over several seeds, under a deliberately tight KV
// pool so the commitment cap (not max_batch) gates admission.
TEST(ServingEngineTest, SchedulerPropertiesUnderKvPressure) {
  const TinyTransformer model = MakePrunedModel();
  for (uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    ServingEngineConfig cfg = TestEngineConfig(model.config());
    cfg.max_batch = 8;
    cfg.kv_num_blocks = 4;  // 32 token slots: 1-2 requests at a time
    ServingEngine engine(&model, cfg);
    engine.InjectPoissonArrivals(RaggedTraffic(seed));
    // A request whose footprint exceeds the whole pool must be rejected
    // without wedging the queue behind it.
    Rng poison_rng(seed + 77);
    engine.Submit(RandomPrompt(poison_rng, 20, model.config().vocab), 20, 0.25);
    const ExecServingReport report = engine.Run();

    // Conservation: every request finished one way or the other.
    EXPECT_EQ(report.completed + report.rejected, report.arrived);
    EXPECT_GE(report.rejected, 1);
    int64_t finished = 0;
    for (const RequestRecord& r : engine.results()) {
      EXPECT_NE(r.reason, FinishReason::kNone) << "id=" << r.id;
      if (r.reason == FinishReason::kMaxTokens) {
        EXPECT_EQ(static_cast<int64_t>(r.generated.size()), r.max_new_tokens);
      }
      ++finished;
    }
    EXPECT_EQ(finished, report.arrived);

    // Caps respected; pool fully reclaimed after drain.
    EXPECT_LE(report.peak_batch, cfg.max_batch);
    EXPECT_LE(report.peak_kv_blocks, cfg.kv_num_blocks);
    EXPECT_EQ(engine.kv_cache().free_blocks(), cfg.kv_num_blocks);
    EXPECT_EQ(engine.kv_cache().WastedTokenSlots(), 0);

    // Strict FIFO: admissions happen in (arrival, id) order — no starvation,
    // no skip-ahead.
    const std::vector<int64_t>& order = engine.admission_order();
    for (size_t i = 1; i < order.size(); ++i) {
      const RequestRecord& prev = engine.results()[order[i - 1]];
      const RequestRecord& cur = engine.results()[order[i]];
      EXPECT_TRUE(prev.arrival_s < cur.arrival_s ||
                  (prev.arrival_s == cur.arrival_s && prev.id < cur.id))
          << "admission out of FIFO order at position " << i;
    }
    EXPECT_EQ(static_cast<int64_t>(order.size()), report.completed);
  }
}

// The virtual clock mirrors SimulateServing's arithmetic expression for
// expression, so on the common domain (uniform shapes, no EOS, ample KV)
// the two reports agree to floating-point accuracy — including the
// p99 latency satellite.
TEST(ServingEngineTest, MatchesAnalyticSimulatorOnCommonDomain) {
  const TinyTransformer model = MakePrunedModel();

  ServingConfig sim;
  sim.engine.model = ModelConfigFor(model.config());
  sim.engine.framework = Framework::kSpInfer;
  sim.engine.device = Rtx4090();
  sim.engine.sparsity = 0.6;
  sim.arrival_rate_rps = 6.0;
  sim.input_len = 8;
  sim.output_len = 8;
  sim.sim_seconds = 4.0;
  sim.seed = 31;
  sim.max_batch = 4;
  const ServingReport analytic = SimulateServing(sim);
  // Guard the comparison's preconditions: the tiny model fits at the full
  // batch and the analytic run drains completely.
  ASSERT_EQ(analytic.feasible_batch, sim.max_batch);
  ASSERT_EQ(analytic.completed, analytic.arrived);
  ASSERT_GT(analytic.completed, 10);

  ServingEngineConfig cfg = TestEngineConfig(model.config());
  cfg.max_batch = sim.max_batch;
  cfg.kv_num_blocks = 64;  // ample: KV never gates admission
  cfg.cost = sim.engine;
  PoissonTraffic t;
  t.arrival_rate_rps = sim.arrival_rate_rps;
  t.horizon_s = sim.sim_seconds;
  t.seed = sim.seed;
  t.prompt_len_min = t.prompt_len_max = sim.input_len;
  t.max_new_min = t.max_new_max = sim.output_len;
  ServingEngine engine(&model, cfg);
  engine.InjectPoissonArrivals(t);
  const ExecServingReport exec = engine.Run();

  EXPECT_EQ(exec.arrived, analytic.arrived);
  EXPECT_EQ(exec.completed, analytic.completed);
  EXPECT_EQ(exec.rejected, 0);
  const double kRel = 1e-9;
  EXPECT_NEAR(exec.throughput_tps, analytic.throughput_tps,
              kRel * analytic.throughput_tps);
  EXPECT_NEAR(exec.mean_batch, analytic.mean_batch, kRel * analytic.mean_batch);
  EXPECT_NEAR(exec.latency.mean_ms, analytic.mean_latency_ms,
              kRel * analytic.mean_latency_ms);
  EXPECT_NEAR(exec.latency.p50_ms, analytic.p50_latency_ms,
              kRel * analytic.p50_latency_ms);
  EXPECT_NEAR(exec.latency.p95_ms, analytic.p95_latency_ms,
              kRel * analytic.p95_latency_ms);
  EXPECT_NEAR(exec.latency.p99_ms, analytic.p99_latency_ms,
              kRel * analytic.p99_latency_ms);
}

// Submit is thread-safe: concurrent producers, then one Run, loses nothing.
TEST(ServingEngineTest, ConcurrentSubmitLosesNoRequests) {
  const TinyTransformer model = MakePrunedModel();
  ServingEngineConfig cfg = TestEngineConfig(model.config());
  cfg.max_batch = 8;
  ServingEngine engine(&model, cfg);
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&engine, &model, w]() {
      Rng rng(100 + static_cast<uint64_t>(w));
      for (int i = 0; i < 8; ++i) {
        engine.Submit(RandomPrompt(rng, 6, model.config().vocab), 5, 0.0);
      }
    });
  }
  for (std::thread& t : workers) {
    t.join();
  }
  const ExecServingReport report = engine.Run();
  EXPECT_EQ(report.arrived, 32);
  EXPECT_EQ(report.completed, 32);
  EXPECT_EQ(report.rejected, 0);
  for (const RequestRecord& r : engine.results()) {
    EXPECT_EQ(r.reason, FinishReason::kMaxTokens);
    EXPECT_EQ(r.generated.size(), 5u);
  }
}

}  // namespace
}  // namespace spinfer
