#include "src/llm/serving.h"

#include <gtest/gtest.h>

namespace spinfer {
namespace {

ServingConfig BaseServing(Framework f) {
  ServingConfig cfg;
  cfg.engine.model = Opt13B();
  cfg.engine.framework = f;
  cfg.engine.device = Rtx4090();
  cfg.engine.num_gpus = 1;
  cfg.engine.sparsity = 0.6;
  cfg.arrival_rate_rps = 2.0;
  cfg.input_len = 128;
  cfg.output_len = 64;
  cfg.sim_seconds = 30.0;
  cfg.seed = 5;
  return cfg;
}

TEST(ServingTest, SpInferServesOnOneGpu) {
  const ServingReport r = SimulateServing(BaseServing(Framework::kSpInfer));
  EXPECT_GT(r.feasible_batch, 8);
  EXPECT_GT(r.completed, 20);
  EXPECT_GT(r.throughput_tps, 50.0);
  EXPECT_GT(r.p95_latency_ms, r.p50_latency_ms);
  EXPECT_GE(r.p99_latency_ms, r.p95_latency_ms);
}

TEST(ServingTest, DenseFrameworkCannotServeOnOneGpu) {
  const ServingReport r = SimulateServing(BaseServing(Framework::kFasterTransformer));
  EXPECT_EQ(r.feasible_batch, 0);
  EXPECT_EQ(r.completed, 0);
}

TEST(ServingTest, MemoryHeadroomRaisesFeasibleBatch) {
  const ServingReport spinfer_r = SimulateServing(BaseServing(Framework::kSpInfer));
  const ServingReport flash_r = SimulateServing(BaseServing(Framework::kFlashLlm));
  // Tiled-CSL weights are ~1.7x larger at 60% sparsity: less KV headroom.
  EXPECT_GT(spinfer_r.feasible_batch, flash_r.feasible_batch);
}

TEST(ServingTest, TailLatencyLowerUnderLoadWithSpInfer) {
  ServingConfig cfg = BaseServing(Framework::kSpInfer);
  cfg.engine.num_gpus = 2;
  cfg.arrival_rate_rps = 6.0;
  const ServingReport spinfer_r = SimulateServing(cfg);
  cfg.engine.framework = Framework::kFlashLlm;
  const ServingReport flash_r = SimulateServing(cfg);
  ASSERT_GT(spinfer_r.completed, 0);
  ASSERT_GT(flash_r.completed, 0);
  EXPECT_LT(spinfer_r.p95_latency_ms, flash_r.p95_latency_ms);
  EXPECT_GT(spinfer_r.throughput_tps, flash_r.throughput_tps);
}

TEST(ServingTest, ThroughputSaturatesWithArrivalRate) {
  ServingConfig cfg = BaseServing(Framework::kSpInfer);
  cfg.arrival_rate_rps = 0.5;
  const double light = SimulateServing(cfg).throughput_tps;
  cfg.arrival_rate_rps = 8.0;
  const double heavy = SimulateServing(cfg).throughput_tps;
  EXPECT_GT(heavy, light);  // more offered load, more served tokens
}

TEST(ServingTest, DeterministicForSeed) {
  const ServingReport a = SimulateServing(BaseServing(Framework::kSpInfer));
  const ServingReport b = SimulateServing(BaseServing(Framework::kSpInfer));
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.throughput_tps, b.throughput_tps);
}

// Golden values for the latency summary, pinned so a refactor of the
// percentile definition (linear interpolation at rank p * (n-1) over the
// sorted latencies — see SummarizeLatenciesMs) or of the iteration
// arithmetic cannot drift silently. The p99 column had no coverage at all
// before this test. Values re-recorded when the truncating nearest-lower-
// rank index was replaced by interpolation; the tolerance is float-noise
// only.
TEST(ServingTest, LatencyPercentilesGolden) {
  ServingConfig cfg = BaseServing(Framework::kSpInfer);
  cfg.arrival_rate_rps = 6.0;  // enough load that the percentiles separate
  const ServingReport r = SimulateServing(cfg);
  ASSERT_GT(r.completed, 100);
  EXPECT_GT(r.p50_latency_ms, 0.0);
  EXPECT_LE(r.p50_latency_ms, r.p95_latency_ms);
  EXPECT_LE(r.p95_latency_ms, r.p99_latency_ms);
  EXPECT_LE(r.mean_latency_ms, r.p99_latency_ms);
  const double kRel = 1e-9;
  EXPECT_NEAR(r.mean_latency_ms, 1593.5784281230938, kRel * r.mean_latency_ms);
  EXPECT_NEAR(r.p50_latency_ms, 1653.7157548354928, kRel * r.p50_latency_ms);
  EXPECT_NEAR(r.p95_latency_ms, 1967.142553102974, kRel * r.p95_latency_ms);
  EXPECT_NEAR(r.p99_latency_ms, 2071.1734387136662, kRel * r.p99_latency_ms);
}

}  // namespace
}  // namespace spinfer
