#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace spinfer {
namespace obs {
namespace {

TEST(Counter, AddAndIncrementAccumulate) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(Counter, ConcurrentAddsDoNotLoseUpdates) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) {
        c.Increment();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.Value(), 40000u);
}

TEST(Gauge, RoundTripsDoublesExactly) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(3.25);
  EXPECT_EQ(g.Value(), 3.25);
  g.Set(-1e-300);
  EXPECT_EQ(g.Value(), -1e-300);
}

TEST(Histogram, EmptyReturnsZeroEverywhere) {
  Histogram h({1.0, 2.0, 4.0});
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Sum(), 0.0);
  EXPECT_EQ(h.Min(), 0.0);
  EXPECT_EQ(h.Max(), 0.0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Quantile(0.99), 0.0);
}

TEST(Histogram, SingleSampleIsEveryQuantile) {
  Histogram h({1.0, 2.0, 4.0});
  h.Record(1.5);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.Min(), 1.5);
  EXPECT_EQ(h.Max(), 1.5);
  EXPECT_EQ(h.Mean(), 1.5);
  // Every quantile clamps into [min, max] = the one sample.
  EXPECT_EQ(h.Quantile(0.0), 1.5);
  EXPECT_EQ(h.Quantile(0.5), 1.5);
  EXPECT_EQ(h.Quantile(1.0), 1.5);
}

TEST(Histogram, OverflowBucketReportsObservedMax) {
  Histogram h({1.0, 2.0});
  h.Record(100.0);  // above the last bound -> overflow bucket
  h.Record(250.0);
  EXPECT_EQ(h.Max(), 250.0);
  // Any rank landing in the unbounded overflow bucket reports the observed
  // max — the only finite point estimate available there.
  EXPECT_EQ(h.Quantile(0.5), 250.0);
  EXPECT_EQ(h.Quantile(0.99), 250.0);
}

TEST(Histogram, BoundaryValueLandsInItsBucketInclusive) {
  Histogram h({1.0, 2.0});
  // lower_bound semantics: a sample equal to an upper bound belongs to that
  // bound's bucket, not the next one.
  h.Record(1.0);
  EXPECT_EQ(h.Quantile(0.5), 1.0);
}

TEST(Histogram, QuantilesInterpolateWithinBuckets) {
  Histogram h({10.0, 20.0, 40.0});
  for (int i = 0; i < 90; ++i) {
    h.Record(5.0);  // bucket [0, 10]
  }
  for (int i = 0; i < 10; ++i) {
    h.Record(30.0);  // bucket (20, 40]
  }
  EXPECT_EQ(h.Count(), 100u);
  const double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 5.0);
  EXPECT_LE(p50, 10.0);
  const double p95 = h.Quantile(0.95);
  EXPECT_GT(p95, 20.0);
  EXPECT_LE(p95, 30.0);  // clamped to observed max
  EXPECT_EQ(h.Quantile(1.0), 30.0);
}

TEST(Histogram, MinMaxTrackExtremaAcrossThreads) {
  Histogram h(Histogram::ExponentialBuckets(0.001, 2.0, 24));
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 1; i <= 1000; ++i) {
        h.Record(static_cast<double>(t * 1000 + i));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(h.Count(), 4000u);
  EXPECT_EQ(h.Min(), 1.0);
  EXPECT_EQ(h.Max(), 4000.0);
}

TEST(Histogram, ExponentialBucketsGrowByFactor) {
  const std::vector<double> b = Histogram::ExponentialBuckets(1.0, 2.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 1.0);
  EXPECT_EQ(b[1], 2.0);
  EXPECT_EQ(b[2], 4.0);
  EXPECT_EQ(b[3], 8.0);
}

TEST(Histogram, SummaryMentionsAllFields) {
  Histogram h({1.0});
  h.Record(0.5);
  const std::string s = h.Summary();
  for (const char* field :
       {"count=1", "sum=0.5", "min=0.5", "p50=", "p95=", "p99=", "max=0.5"}) {
    EXPECT_NE(s.find(field), std::string::npos) << s;
  }
}

TEST(Histogram, ResetDropsEverySample) {
  Histogram h({1.0, 2.0, 4.0});
  h.Record(0.5);
  h.Record(3.0);
  h.Record(100.0);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Sum(), 0.0);
  EXPECT_EQ(h.Min(), 0.0);
  EXPECT_EQ(h.Max(), 0.0);
  EXPECT_EQ(h.Quantile(0.99), 0.0);
  for (size_t i = 0; i < h.NumBuckets(); ++i) {
    EXPECT_EQ(h.BucketCount(i), 0u);
  }
  // A reset histogram seeds extrema afresh — min must not be stuck at the
  // 0.0 initializer once new samples arrive.
  h.Record(5.0);
  EXPECT_EQ(h.Min(), 5.0);
  EXPECT_EQ(h.Max(), 5.0);
}

TEST(Histogram, MergeFromAddsCountsSumAndExtrema) {
  Histogram a({1.0, 2.0, 4.0});
  Histogram b({1.0, 2.0, 4.0});
  a.Record(0.5);
  a.Record(3.0);
  b.Record(1.5);
  b.Record(10.0);  // overflow bucket
  a.MergeFrom(b);
  EXPECT_EQ(a.Count(), 4u);
  EXPECT_EQ(a.Sum(), 15.0);
  EXPECT_EQ(a.Min(), 0.5);
  EXPECT_EQ(a.Max(), 10.0);
  EXPECT_EQ(a.BucketCount(1), 1u);  // b's 1.5 landed in (1,2]
  EXPECT_EQ(a.BucketCount(3), 1u);  // b's 10.0 landed in overflow
  // Merging an empty histogram is a no-op.
  Histogram empty({1.0, 2.0, 4.0});
  a.MergeFrom(empty);
  EXPECT_EQ(a.Count(), 4u);
}

TEST(Histogram, MergeIntoEmptySeedsExtremaFromSource) {
  Histogram dst({1.0, 2.0});
  Histogram src({1.0, 2.0});
  src.Record(0.25);
  src.Record(1.75);
  dst.MergeFrom(src);
  EXPECT_EQ(dst.Count(), 2u);
  // The empty destination must adopt src's extrema, not keep the 0.0
  // initializer as its min.
  EXPECT_EQ(dst.Min(), 0.25);
  EXPECT_EQ(dst.Max(), 1.75);
}

TEST(Histogram, MergeResetCyclesSupportWindowedUse) {
  // The SLO tracker's access pattern: epochs merge into a scratch, the
  // oldest epoch resets, repeat. Totals must stay exact throughout.
  Histogram e0({1.0, 10.0});
  Histogram e1({1.0, 10.0});
  Histogram scratch({1.0, 10.0});
  for (int round = 0; round < 5; ++round) {
    e0.Record(0.5);
    e1.Record(5.0);
    scratch.Reset();
    scratch.MergeFrom(e0);
    scratch.MergeFrom(e1);
    EXPECT_EQ(scratch.Count(), e0.Count() + e1.Count());
    EXPECT_EQ(scratch.Min(), 0.5);
    EXPECT_EQ(scratch.Max(), 5.0);
    if (round % 2 == 1) {
      e0.Reset();
    }
  }
}

TEST(Histogram, MergeFromMismatchedLayoutAborts) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 3.0});
  EXPECT_DEATH(a.MergeFrom(b), "bucket layouts differ");
}

TEST(MetricsRegistry, ConcurrentWritersOnSharedInstrumentsLoseNothing) {
  // The TSan-facing test: many threads hammering the same named instruments
  // through the registry while a reader snapshots concurrently. Counter sums
  // must be exact; the reader must merely not crash or race.
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.ResetForTest();
  constexpr int kThreads = 4;
  constexpr int kOps = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      // Deliberately re-looks-up by name to also exercise the registry map
      // lock against concurrent find-or-create.
      for (int i = 0; i < kOps; ++i) {
        reg.GetCounter("mt.counter")->Increment();
        reg.GetGauge("mt.gauge")->Set(static_cast<double>(t));
        reg.GetHistogram("mt.hist", {1.0, 8.0, 64.0})
            ->Record(static_cast<double>(i % 100));
      }
    });
  }
  std::thread reader([&reg] {
    for (int i = 0; i < 50; ++i) {
      (void)reg.ToString();
      (void)reg.ToJson();
      (void)reg.GetHistogram("mt.hist", {1.0, 8.0, 64.0})->Quantile(0.95);
    }
  });
  for (std::thread& t : threads) {
    t.join();
  }
  reader.join();
  EXPECT_EQ(reg.GetCounter("mt.counter")->Value(),
            static_cast<uint64_t>(kThreads) * kOps);
  EXPECT_EQ(reg.GetHistogram("mt.hist", {})->Count(),
            static_cast<uint64_t>(kThreads) * kOps);
  const double g = reg.GetGauge("mt.gauge")->Value();
  EXPECT_GE(g, 0.0);
  EXPECT_LT(g, static_cast<double>(kThreads));
  reg.ResetForTest();
}

TEST(MetricsRegistry, VisitorsSeeNameSortedInstruments) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.ResetForTest();
  reg.GetCounter("v.b")->Add(2);
  reg.GetCounter("v.a")->Add(1);
  reg.GetGauge("v.g")->Set(1.5);
  reg.GetHistogram("v.h", {1.0})->Record(0.5);
  std::vector<std::string> counter_names;
  reg.VisitCounters([&](const std::string& name, const Counter& c) {
    counter_names.push_back(name + "=" + std::to_string(c.Value()));
  });
  EXPECT_EQ(counter_names, (std::vector<std::string>{"v.a=1", "v.b=2"}));
  int gauges = 0;
  reg.VisitGauges([&](const std::string&, const Gauge&) { ++gauges; });
  EXPECT_EQ(gauges, 1);
  uint64_t hist_count = 0;
  reg.VisitHistograms([&](const std::string& name, const Histogram& h) {
    EXPECT_EQ(name, "v.h");
    hist_count = h.Count();
  });
  EXPECT_EQ(hist_count, 1u);
  reg.ResetForTest();
}

TEST(MetricsRegistry, FindOrCreateReturnsStablePointers) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.ResetForTest();
  Counter* c = reg.GetCounter("test.counter");
  EXPECT_EQ(c, reg.GetCounter("test.counter"));
  Gauge* g = reg.GetGauge("test.gauge");
  EXPECT_EQ(g, reg.GetGauge("test.gauge"));
  Histogram* h = reg.GetHistogram("test.hist", {1.0, 2.0});
  // Second lookup ignores the (different) bounds and returns the original.
  EXPECT_EQ(h, reg.GetHistogram("test.hist", {99.0}));
  EXPECT_EQ(h->upper_bounds().size(), 2u);
  reg.ResetForTest();
}

TEST(MetricsRegistry, DumpsAreSortedAndDeterministic) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.ResetForTest();
  reg.GetCounter("b.count")->Add(2);
  reg.GetCounter("a.count")->Add(1);
  reg.GetGauge("g.value")->Set(1.5);
  reg.GetHistogram("h.lat", {1.0})->Record(0.5);

  const std::string text = reg.ToString();
  EXPECT_LT(text.find("a.count counter 1"), text.find("b.count counter 2"));
  EXPECT_NE(text.find("g.value gauge 1.5"), std::string::npos);
  EXPECT_NE(text.find("h.lat histogram count=1"), std::string::npos);

  const std::string json = reg.ToJson();
  EXPECT_EQ(json, reg.ToJson());  // pure snapshot, stable across calls
  EXPECT_NE(json.find("\"a.count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"g.value\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"h.lat\":{\"count\":1"), std::string::npos);
  reg.ResetForTest();
}

}  // namespace
}  // namespace obs
}  // namespace spinfer
