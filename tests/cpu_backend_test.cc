#include "src/core/cpu_backend.h"

#include <gtest/gtest.h>

#include "src/core/spinfer_kernel.h"
#include "src/numeric/compare.h"
#include "src/util/cpu_features.h"
#include "src/util/random.h"
#include "src/util/thread_pool.h"

namespace spinfer {
namespace {

// Exact comparison: the v2 backend's determinism contract is bit-identity,
// not tolerance. Any mismatch prints the first differing element.
void ExpectBitIdentical(const FloatMatrix& a, const FloatMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (int64_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i])
        << "first mismatch at flat index " << i << " of " << a.size();
  }
}

class CpuSpmmSweep : public ::testing::TestWithParam<std::tuple<double, int64_t>> {};

TEST_P(CpuSpmmSweep, MatchesReference) {
  const auto [sparsity, n] = GetParam();
  Rng rng(191 + static_cast<uint64_t>(n) + static_cast<uint64_t>(sparsity * 100));
  const HalfMatrix w = HalfMatrix::RandomSparse(160, 224, sparsity, rng);
  const HalfMatrix x = HalfMatrix::Random(224, n, rng, 0.5f);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  const FloatMatrix got = CpuSpmm(enc, x);
  const CompareResult cmp = CompareMatrices(got, ReferenceGemm(w, x), 2e-3, 5e-2);
  EXPECT_TRUE(cmp.ok) << cmp.ToString();
}

INSTANTIATE_TEST_SUITE_P(Sweep, CpuSpmmSweep,
                         ::testing::Combine(::testing::Values(0.0, 0.3, 0.5, 0.9, 1.0),
                                            ::testing::Values<int64_t>(1, 8, 16, 33)));

TEST(CpuBackendTest, AgreesWithWarpSimulatorExactlyStructured) {
  // The two execution paths walk the same format; results agree to FP32
  // rounding (different accumulation orders).
  Rng rng(192);
  const HalfMatrix w = HalfMatrix::RandomSparse(128, 128, 0.6, rng);
  const HalfMatrix x = HalfMatrix::Random(128, 16, rng, 0.5f);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  const FloatMatrix cpu = CpuSpmm(enc, x);
  const FloatMatrix warp = SpInferSpmmKernel().RunEncoded(enc, x, nullptr);
  EXPECT_TRUE(CompareMatrices(cpu, warp, 1e-3, 1e-2).ok);
}

TEST(CpuBackendTest, AccumulateAddsIntoExistingOutput) {
  Rng rng(193);
  const HalfMatrix w = HalfMatrix::RandomSparse(64, 64, 0.5, rng);
  const HalfMatrix x = HalfMatrix::Random(64, 8, rng, 0.5f);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  FloatMatrix out(64, 8);
  out.Fill(10.0f);
  CpuSpmmAccumulate(enc, x, &out);
  const FloatMatrix base = CpuSpmm(enc, x);
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out.data()[i], base.data()[i] + 10.0f, 1e-4);
  }
}

TEST(CpuBackendTest, NonDefaultGeometry) {
  Rng rng(194);
  TcaBmeConfig cfg;
  cfg.gt_rows = 16;
  cfg.gt_cols = 128;
  const HalfMatrix w = HalfMatrix::RandomSparse(80, 300, 0.5, rng);
  const HalfMatrix x = HalfMatrix::Random(300, 8, rng, 0.5f);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w, cfg);
  EXPECT_TRUE(CompareMatrices(CpuSpmm(enc, x), ReferenceGemm(w, x), 2e-3, 5e-2).ok);
}

TEST(CpuBackendTest, SimdVariantsBitIdentical) {
  if (!CpuSpmmVariantAvailable(CpuSpmmVariant::kAvx2)) {
    GTEST_SKIP() << "AVX2 variant unavailable on this build/machine ("
                 << CpuFeaturesSummary() << "); nothing to cross-check";
  }
  // Density 30%..90%: sparse enough to exercise empty bitmap rows, dense
  // enough to fill whole tiles.
  for (const double sparsity : {0.7, 0.5, 0.3, 0.1}) {
    Rng rng(491 + static_cast<uint64_t>(sparsity * 100));
    const HalfMatrix w = HalfMatrix::RandomSparse(160, 224, sparsity, rng);
    const HalfMatrix x = HalfMatrix::Random(224, 33, rng, 0.5f);
    const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
    SpmmWorkspace ws;
    FloatMatrix portable(160, 33);
    portable.Fill(0.0f);
    CpuSpmmAccumulateIntoVariant(enc, x, &ws, &portable, CpuSpmmVariant::kPortable);
    FloatMatrix avx2(160, 33);
    avx2.Fill(0.0f);
    CpuSpmmAccumulateIntoVariant(enc, x, &ws, &avx2, CpuSpmmVariant::kAvx2);
    ExpectBitIdentical(portable, avx2);
  }
}

TEST(CpuBackendTest, BitIdenticalAcrossThreadCounts) {
  Rng rng(492);
  const HalfMatrix w = HalfMatrix::RandomSparse(256, 192, 0.6, rng);
  const HalfMatrix x = HalfMatrix::Random(192, 17, rng, 0.5f);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  ThreadPool::SetGlobalThreads(1);
  const FloatMatrix one = CpuSpmm(enc, x);
  for (const int threads : {2, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    const FloatMatrix got = CpuSpmm(enc, x);
    ExpectBitIdentical(one, got);
  }
  ThreadPool::SetGlobalThreads(0);  // restore the default pool
}

TEST(CpuBackendTest, RaggedShapesOffTileBoundaries) {
  // Shapes that leave partial BitmapTiles on both edges, crossed with N that
  // exercises every row-update tail (scalar, 4-wide, 8-wide, 32+1).
  const std::pair<int64_t, int64_t> shapes[] = {{70, 90}, {129, 257}};
  for (const auto& [m, k] : shapes) {
    for (const int64_t n : {int64_t{1}, int64_t{5}, int64_t{31}, int64_t{33}}) {
      Rng rng(493 + static_cast<uint64_t>(m + n));
      const HalfMatrix w = HalfMatrix::RandomSparse(m, k, 0.5, rng);
      const HalfMatrix x = HalfMatrix::Random(k, n, rng, 0.5f);
      const FloatMatrix got = CpuSpmm(TcaBmeMatrix::Encode(w), x);
      const CompareResult cmp = CompareMatrices(got, ReferenceGemm(w, x), 2e-3, 5e-2);
      EXPECT_TRUE(cmp.ok) << "m=" << m << " k=" << k << " n=" << n << ": "
                          << cmp.ToString();
    }
  }
}

TEST(CpuBackendTest, WorkspaceReusedAcrossCallsAndShapes) {
  Rng rng(494);
  const HalfMatrix w = HalfMatrix::RandomSparse(96, 128, 0.5, rng);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  SpmmWorkspace ws;
  FloatMatrix out;
  // Largest shape first: everything after must fit in the grown buffers.
  const int64_t ns[] = {40, 8, 1, 40, 24, 8};
  int64_t grows_after_first = -1;
  for (const int64_t n : ns) {
    Rng xrng(600 + static_cast<uint64_t>(n));
    const HalfMatrix x = HalfMatrix::Random(128, n, xrng, 0.5f);
    CpuSpmmInto(enc, x, &ws, &out);
    if (grows_after_first < 0) {
      grows_after_first = ws.grow_count();
    } else {
      EXPECT_EQ(ws.grow_count(), grows_after_first)
          << "workspace grew on a shape it had already seen (n=" << n << ")";
    }
    // Reused scratch must not change results: compare against a fresh call.
    ExpectBitIdentical(out, CpuSpmm(enc, x));
  }
  EXPECT_GT(ws.capacity_bytes(), 0u);
}

TEST(CpuBackendTest, QuantIntoBitIdenticalToExplicitHalfStaging) {
  // The fused FP32->FP16 quantizing entry points must produce exactly the
  // bits of the two-step pipeline (stage x into a HalfMatrix, then run the
  // half-input kernel): the batched decode path relies on this equivalence
  // to stay bit-identical to the single-sequence path.
  Rng rng(197);
  const HalfMatrix w = HalfMatrix::RandomSparse(96, 128, 0.6, rng);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  FloatMatrix x(128, 9);
  for (int64_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.Gaussian() * 0.5);
  }
  HalfMatrix xh(128, 9);
  for (int64_t i = 0; i < x.size(); ++i) {
    xh.data()[i] = Half(x.data()[i]);
  }

  SpmmWorkspace ws_staged;
  SpmmWorkspace ws_quant;
  FloatMatrix staged;
  FloatMatrix quant;
  CpuSpmmInto(enc, xh, &ws_staged, &staged);
  CpuSpmmQuantInto(enc, x, &ws_quant, &quant);
  ExpectBitIdentical(quant, staged);

  // Accumulate form: both start from the same non-zero output.
  staged.Fill(2.5f);
  quant.Fill(2.5f);
  CpuSpmmAccumulateInto(enc, xh, &ws_staged, &staged);
  CpuSpmmQuantAccumulateInto(enc, x, &ws_quant, &quant);
  ExpectBitIdentical(quant, staged);
}

TEST(CpuBackendTest, AllZeroMatrix) {
  HalfMatrix w(64, 64);
  Rng rng(195);
  const HalfMatrix x = HalfMatrix::Random(64, 8, rng);
  const FloatMatrix out = CpuSpmm(TcaBmeMatrix::Encode(w), x);
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out.data()[i], 0.0f);
  }
}

}  // namespace
}  // namespace spinfer
