#include "src/core/cpu_backend.h"

#include <gtest/gtest.h>

#include "src/core/spinfer_kernel.h"
#include "src/numeric/compare.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

class CpuSpmmSweep : public ::testing::TestWithParam<std::tuple<double, int64_t>> {};

TEST_P(CpuSpmmSweep, MatchesReference) {
  const auto [sparsity, n] = GetParam();
  Rng rng(191 + static_cast<uint64_t>(n) + static_cast<uint64_t>(sparsity * 100));
  const HalfMatrix w = HalfMatrix::RandomSparse(160, 224, sparsity, rng);
  const HalfMatrix x = HalfMatrix::Random(224, n, rng, 0.5f);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  const FloatMatrix got = CpuSpmm(enc, x);
  const CompareResult cmp = CompareMatrices(got, ReferenceGemm(w, x), 2e-3, 5e-2);
  EXPECT_TRUE(cmp.ok) << cmp.ToString();
}

INSTANTIATE_TEST_SUITE_P(Sweep, CpuSpmmSweep,
                         ::testing::Combine(::testing::Values(0.0, 0.3, 0.5, 0.9, 1.0),
                                            ::testing::Values<int64_t>(1, 8, 16, 33)));

TEST(CpuBackendTest, AgreesWithWarpSimulatorExactlyStructured) {
  // The two execution paths walk the same format; results agree to FP32
  // rounding (different accumulation orders).
  Rng rng(192);
  const HalfMatrix w = HalfMatrix::RandomSparse(128, 128, 0.6, rng);
  const HalfMatrix x = HalfMatrix::Random(128, 16, rng, 0.5f);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  const FloatMatrix cpu = CpuSpmm(enc, x);
  const FloatMatrix warp = SpInferSpmmKernel().RunEncoded(enc, x, nullptr);
  EXPECT_TRUE(CompareMatrices(cpu, warp, 1e-3, 1e-2).ok);
}

TEST(CpuBackendTest, AccumulateAddsIntoExistingOutput) {
  Rng rng(193);
  const HalfMatrix w = HalfMatrix::RandomSparse(64, 64, 0.5, rng);
  const HalfMatrix x = HalfMatrix::Random(64, 8, rng, 0.5f);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  FloatMatrix out(64, 8);
  out.Fill(10.0f);
  CpuSpmmAccumulate(enc, x, &out);
  const FloatMatrix base = CpuSpmm(enc, x);
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out.data()[i], base.data()[i] + 10.0f, 1e-4);
  }
}

TEST(CpuBackendTest, NonDefaultGeometry) {
  Rng rng(194);
  TcaBmeConfig cfg;
  cfg.gt_rows = 16;
  cfg.gt_cols = 128;
  const HalfMatrix w = HalfMatrix::RandomSparse(80, 300, 0.5, rng);
  const HalfMatrix x = HalfMatrix::Random(300, 8, rng, 0.5f);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w, cfg);
  EXPECT_TRUE(CompareMatrices(CpuSpmm(enc, x), ReferenceGemm(w, x), 2e-3, 5e-2).ok);
}

TEST(CpuBackendTest, AllZeroMatrix) {
  HalfMatrix w(64, 64);
  Rng rng(195);
  const HalfMatrix x = HalfMatrix::Random(64, 8, rng);
  const FloatMatrix out = CpuSpmm(TcaBmeMatrix::Encode(w), x);
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out.data()[i], 0.0f);
  }
}

}  // namespace
}  // namespace spinfer
