#include "src/util/random.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace spinfer {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differ = 0;
  for (int i = 0; i < 16; ++i) {
    differ += a.Next() != b.Next();
  }
  EXPECT_GT(differ, 12);
}

TEST(RngTest, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanConverges) {
  Rng rng(4);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Uniform();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BelowIsBounded) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(6);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(7);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3);
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, SampleIsUniqueSubset) {
  Rng rng(8);
  const auto s = rng.Sample(100, 40);
  EXPECT_EQ(s.size(), 40u);
  std::set<uint32_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 40u);
  EXPECT_LT(*std::max_element(s.begin(), s.end()), 100u);
}

TEST(RngTest, SampleFullRange) {
  Rng rng(9);
  const auto s = rng.Sample(16, 16);
  std::set<uint32_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 16u);
}

}  // namespace
}  // namespace spinfer
