#include "src/llm/disaggregation.h"

#include <gtest/gtest.h>

namespace spinfer {
namespace {

DisaggConfig Base(Framework f) {
  DisaggConfig cfg;
  cfg.model = Opt13B();
  cfg.framework = f;
  cfg.sparsity = 0.6;
  cfg.prefill_gpus = 2;
  cfg.decode_gpus = 1;
  cfg.request_rate_rps = 2.0;
  cfg.input_len = 512;
  cfg.output_len = 128;
  return cfg;
}

TEST(DisaggregationTest, SpInferPlanIsFeasible) {
  const DisaggReport r = PlanDisaggregation(Base(Framework::kSpInfer));
  EXPECT_TRUE(r.prefill_fits);
  EXPECT_TRUE(r.decode_fits);
  EXPECT_GT(r.decode_batch, 8);
  EXPECT_GT(r.ttft_ms, r.kv_transfer_ms);
  EXPECT_GT(r.tpot_ms, 0.0);
  EXPECT_GT(r.total_gpus, 0.0);
}

TEST(DisaggregationTest, DenseDecodeClusterCannotUseSingleGpus) {
  // The dense model doesn't fit a 24 GB decode instance at all — the exact
  // situation SpInfer's weight compression fixes.
  const DisaggReport dense = PlanDisaggregation(Base(Framework::kFasterTransformer));
  EXPECT_FALSE(dense.decode_fits);
  const DisaggReport sparse = PlanDisaggregation(Base(Framework::kSpInfer));
  EXPECT_TRUE(sparse.decode_fits);
}

TEST(DisaggregationTest, SpInferNeedsFewerDecodeGpusThanFlashLlm) {
  DisaggConfig cfg = Base(Framework::kFlashLlm);
  cfg.decode_gpus = 2;  // Flash-LLM needs 2 GPUs per decode instance
  const DisaggReport flash = PlanDisaggregation(cfg);
  const DisaggReport spinfer = PlanDisaggregation(Base(Framework::kSpInfer));
  ASSERT_TRUE(flash.decode_fits);
  ASSERT_TRUE(spinfer.decode_fits);
  EXPECT_LT(spinfer.total_gpus, flash.total_gpus + 1e-9);
}

TEST(DisaggregationTest, KvTransferScalesWithPrompt) {
  DisaggConfig cfg = Base(Framework::kSpInfer);
  cfg.input_len = 256;
  const double short_xfer = PlanDisaggregation(cfg).kv_transfer_ms;
  cfg.input_len = 1024;
  const double long_xfer = PlanDisaggregation(cfg).kv_transfer_ms;
  EXPECT_NEAR(long_xfer / short_xfer, 4.0, 0.01);
}

TEST(DisaggregationTest, ClusterSizingScalesWithRate) {
  DisaggConfig cfg = Base(Framework::kSpInfer);
  cfg.request_rate_rps = 1.0;
  const DisaggReport one = PlanDisaggregation(cfg);
  cfg.request_rate_rps = 8.0;
  const DisaggReport eight = PlanDisaggregation(cfg);
  EXPECT_NEAR(eight.decode_instances / one.decode_instances, 8.0, 0.01);
  EXPECT_GE(eight.total_gpus, one.total_gpus);
}

TEST(DisaggregationTest, TpotBeatsTtftPerToken) {
  // Steady-state decode cadence is far cheaper than the prompt cost — the
  // reason the phases are split in the first place.
  const DisaggReport r = PlanDisaggregation(Base(Framework::kSpInfer));
  EXPECT_LT(r.tpot_ms, r.ttft_ms);
}

// Swept planner inputs include degenerate points — zero rate, empty shapes,
// a zero-capacity scheduler, an empty cluster side. Each must come back as
// an all-false, all-zero report (a hole in the sweep), not a crash.
TEST(DisaggregationTest, DegenerateConfigsReportNothingFitsGracefully) {
  const auto degenerate = [](DisaggConfig cfg) {
    const DisaggReport r = PlanDisaggregation(cfg);
    EXPECT_FALSE(r.prefill_fits);
    EXPECT_FALSE(r.decode_fits);
    EXPECT_EQ(r.decode_batch, 0);
    EXPECT_DOUBLE_EQ(r.ttft_ms, 0.0);
    EXPECT_DOUBLE_EQ(r.tpot_ms, 0.0);
    EXPECT_DOUBLE_EQ(r.decode_tokens_per_s, 0.0);
    EXPECT_DOUBLE_EQ(r.total_gpus, 0.0);
  };
  DisaggConfig cfg = Base(Framework::kSpInfer);
  cfg.request_rate_rps = 0.0;
  degenerate(cfg);
  cfg = Base(Framework::kSpInfer);
  cfg.input_len = 0;
  degenerate(cfg);
  cfg = Base(Framework::kSpInfer);
  cfg.output_len = 0;
  degenerate(cfg);
  cfg = Base(Framework::kSpInfer);
  cfg.max_decode_batch = 0;
  degenerate(cfg);
  cfg = Base(Framework::kSpInfer);
  cfg.prefill_gpus = 0;
  degenerate(cfg);
  cfg = Base(Framework::kSpInfer);
  cfg.decode_gpus = 0;
  degenerate(cfg);
}

}  // namespace
}  // namespace spinfer
