#include <gtest/gtest.h>

#include "src/baselines/kernel_registry.h"
#include "src/numeric/compare.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

struct BaselineCase {
  std::string kernel;
  double sparsity;
};

class BaselineKernelTest : public ::testing::TestWithParam<BaselineCase> {};

TEST_P(BaselineKernelTest, MatchesReferenceGemm) {
  const BaselineCase& bc = GetParam();
  Rng rng(121);
  const HalfMatrix w = HalfMatrix::RandomSparse(96, 80, bc.sparsity, rng);
  const HalfMatrix x = HalfMatrix::Random(80, 16, rng, 0.5f);
  const auto kernel = MakeKernel(bc.kernel);
  PerfCounters counters;
  const FloatMatrix got = kernel->Run(w, x, &counters);
  const FloatMatrix want = ReferenceGemm(w, x);
  const CompareResult cmp = CompareMatrices(got, want, 2e-3, 5e-2);
  EXPECT_TRUE(cmp.ok) << bc.kernel << ": " << cmp.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllSparsities, BaselineKernelTest,
    ::testing::Values(
        BaselineCase{"cublas_tc", 0.5}, BaselineCase{"cublas_tc", 0.0},
        BaselineCase{"flash_llm", 0.5}, BaselineCase{"flash_llm", 0.0},
        BaselineCase{"flash_llm", 0.9}, BaselineCase{"sputnik", 0.5},
        BaselineCase{"sputnik", 0.7}, BaselineCase{"cusparse", 0.5},
        BaselineCase{"sparta", 0.5}, BaselineCase{"sparta", 0.3},
        BaselineCase{"sparta", 0.0}, BaselineCase{"smat", 0.5},
        BaselineCase{"smat", 0.99}, BaselineCase{"spinfer", 0.5}),
    [](const ::testing::TestParamInfo<BaselineCase>& info) {
      return info.param.kernel + "_s" +
             std::to_string(static_cast<int>(info.param.sparsity * 100));
    });

TEST(KernelRegistryTest, AllKernelsConstruct) {
  const auto kernels = AllKernels();
  EXPECT_EQ(kernels.size(), 7u);
  for (const auto& k : kernels) {
    EXPECT_FALSE(k->name().empty());
  }
}

TEST(KernelRegistryTest, NamesRoundtrip) {
  for (const std::string& name : KernelNames()) {
    const auto k = MakeKernel(name);
    // SpInfer decorates its name with ablation suffixes; base names match.
    EXPECT_EQ(k->name().rfind(name == "spinfer" ? "spinfer" : name, 0), 0u);
  }
}

TEST(BaselineKernelTest, FlashLlmCountsBankConflicts) {
  Rng rng(122);
  const HalfMatrix w = HalfMatrix::RandomSparse(128, 128, 0.5, rng);
  const HalfMatrix x = HalfMatrix::Random(128, 16, rng, 0.5f);
  PerfCounters flash;
  MakeKernel("flash_llm")->Run(w, x, &flash);
  PerfCounters spinfer_c;
  MakeKernel("spinfer")->Run(w, x, &spinfer_c);
  // Fig. 12: Flash-LLM's scattered extraction conflicts; SpInfer's SMBD does
  // not (the functional SpInfer path charges none).
  EXPECT_GT(flash.smem_bank_conflicts, 0u);
  EXPECT_EQ(spinfer_c.smem_bank_conflicts, 0u);
}

TEST(BaselineKernelTest, SpInferReadsFewestDramBytesAmongTcKernels) {
  Rng rng(123);
  const HalfMatrix w = HalfMatrix::RandomSparse(128, 128, 0.5, rng);
  const HalfMatrix x = HalfMatrix::Random(128, 16, rng, 0.5f);
  PerfCounters spinfer_c;
  PerfCounters flash;
  PerfCounters cublas;
  MakeKernel("spinfer")->Run(w, x, &spinfer_c);
  MakeKernel("flash_llm")->Run(w, x, &flash);
  MakeKernel("cublas_tc")->Run(w, x, &cublas);
  EXPECT_LT(spinfer_c.dram_bytes_read, flash.dram_bytes_read);
  EXPECT_LT(spinfer_c.dram_bytes_read, cublas.dram_bytes_read);
}

TEST(BaselineKernelTest, SpInferUsesFewestRegisters) {
  Rng rng(124);
  const HalfMatrix w = HalfMatrix::RandomSparse(64, 64, 0.5, rng);
  const HalfMatrix x = HalfMatrix::Random(64, 16, rng, 0.5f);
  PerfCounters spinfer_c;
  PerfCounters flash;
  MakeKernel("spinfer")->Run(w, x, &spinfer_c);
  MakeKernel("flash_llm")->Run(w, x, &flash);
  EXPECT_LT(spinfer_c.registers_per_thread, flash.registers_per_thread);
}

}  // namespace
}  // namespace spinfer
