// Structural ("golden") tests of the generated CUDA kernel source. No nvcc
// exists in this environment, so the checks assert the properties a CUDA
// build needs: required intrinsics/PTX present, configuration constants
// plumbed through, balanced braces, ablation switches reflected.
#include "src/codegen/cuda_codegen.h"

#include <gtest/gtest.h>

namespace spinfer {
namespace {

int BraceBalance(const std::string& src) {
  int depth = 0;
  for (char c : src) {
    depth += (c == '{') - (c == '}');
  }
  return depth;
}

size_t Count(const std::string& haystack, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(CudaCodegenTest, ContainsCoreInstructions) {
  const std::string src = GenerateSpInferCudaKernel(SpInferKernelConfig{});
  // The paper's instruction inventory (§4.3): cp.async (LDGSTS), ldmatrix
  // (LDSM), mma.m16n8k16, and __popcll for SMBD.
  EXPECT_NE(src.find("cp.async.cg.shared.global"), std::string::npos);
  EXPECT_NE(src.find("ldmatrix.sync.aligned.m8n8.x4.shared.b16"), std::string::npos);
  EXPECT_NE(src.find("mma.sync.aligned.m16n8k16.row.col.f32.f16.f16.f32"),
            std::string::npos);
  EXPECT_NE(src.find("__popcll"), std::string::npos);
  EXPECT_NE(src.find("cp.async.commit_group"), std::string::npos);
  EXPECT_NE(src.find("cp.async.wait_group"), std::string::npos);
}

TEST(CudaCodegenTest, ConfigConstantsPlumbedThrough) {
  SpInferKernelConfig cfg;
  cfg.format.gt_rows = 32;
  cfg.format.gt_cols = 128;
  cfg.split_k = 4;
  const std::string src = GenerateSpInferCudaKernel(cfg);
  EXPECT_NE(src.find("constexpr int kGtRows = 32;"), std::string::npos);
  EXPECT_NE(src.find("constexpr int kGtCols = 128;"), std::string::npos);
  EXPECT_NE(src.find("constexpr int kTcRows = 2;"), std::string::npos);
  EXPECT_NE(src.find("constexpr int kTcCols = 8;"), std::string::npos);
  EXPECT_NE(src.find("constexpr int kSplitK = 4;"), std::string::npos);
  EXPECT_NE(src.find("constexpr int kWarpsPerBlock = 2;"), std::string::npos);
}

TEST(CudaCodegenTest, AblationSwitchesReflected) {
  SpInferKernelConfig cfg;
  cfg.smbd = false;
  cfg.async_pipe = false;
  const std::string src = GenerateSpInferCudaKernel(cfg);
  EXPECT_NE(src.find("constexpr bool kUseSmbd = false;"), std::string::npos);
  EXPECT_NE(src.find("constexpr bool kAsyncPipe = false;"), std::string::npos);
  const std::string on = GenerateSpInferCudaKernel(SpInferKernelConfig{});
  EXPECT_NE(on.find("constexpr bool kUseSmbd = true;"), std::string::npos);
}

TEST(CudaCodegenTest, StructurallySane) {
  const std::string src = GenerateSpInferCudaKernel(SpInferKernelConfig{});
  EXPECT_EQ(BraceBalance(src), 0);
  // Exactly one main kernel, one reduction kernel, one launcher.
  EXPECT_EQ(Count(src, "__global__ void"), 2u);
  EXPECT_EQ(Count(src, "spinfer_spmm_kernel"), 2u);  // definition + launch
  EXPECT_EQ(Count(src, "spinfer_splitk_reduce"), 2u);
  EXPECT_NE(src.find("extern \"C\" void spinfer_spmm_launch"), std::string::npos);
}

TEST(CudaCodegenTest, SmbdDeviceFunctionMirrorsAlg2) {
  const std::string fn = GenerateSmbdDeviceFunction();
  // The MaskedPopCount mask construction from Alg. 2.
  EXPECT_NE(fn.find("(1ull << offset_bits) - 1ull"), std::string::npos);
  // Phase II reuse: "+1 if a0 present".
  EXPECT_NE(fn.find("off + (bit0 ? 1 : 0)"), std::string::npos);
  EXPECT_EQ(BraceBalance(fn), 0);
}

TEST(CudaCodegenTest, AutoSplitKFallsBackToOne) {
  SpInferKernelConfig cfg;
  cfg.split_k = 0;
  const std::string src = GenerateSpInferCudaKernel(cfg);
  EXPECT_NE(src.find("constexpr int kSplitK = 1;"), std::string::npos);
}

}  // namespace
}  // namespace spinfer
