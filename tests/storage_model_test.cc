#include "src/format/storage_model.h"

#include <gtest/gtest.h>

#include "src/format/csr.h"
#include "src/format/sparta_format.h"
#include "src/format/tca_bme.h"
#include "src/format/tiled_csl.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

TEST(StorageModelTest, CsrModelMatchesEncoder) {
  Rng rng(81);
  const HalfMatrix w = HalfMatrix::RandomSparse(128, 96, 0.5, rng);
  const CsrMatrix enc = CsrMatrix::Encode(w);
  EXPECT_EQ(enc.StorageBytes(), CsrStorageModel(128, enc.nnz()));
}

TEST(StorageModelTest, TiledCslModelMatchesEncoder) {
  Rng rng(82);
  const HalfMatrix w = HalfMatrix::RandomSparse(128, 128, 0.5, rng);
  const TiledCslMatrix enc = TiledCslMatrix::Encode(w);
  // Model uses NT; encoder stores NT+1 offsets.
  EXPECT_EQ(enc.StorageBytes(), TiledCslStorageModel(enc.num_tiles(), enc.nnz()) + 4);
}

TEST(StorageModelTest, SpartaModelTracksEncoder) {
  Rng rng(83);
  const double s = 0.5;
  const HalfMatrix w = HalfMatrix::RandomSparse(512, 512, s, rng);
  const SpartaMatrix enc = SpartaMatrix::Encode(w);
  const double model = static_cast<double>(SpartaStorageModel(512, 512, s));
  const double actual = static_cast<double>(enc.StorageBytes());
  EXPECT_NEAR(actual, model, model * 0.05);
}

TEST(StorageModelTest, OptimalCr) {
  EXPECT_DOUBLE_EQ(OptimalCompressionRatio(0.0), 1.0);
  EXPECT_DOUBLE_EQ(OptimalCompressionRatio(0.5), 2.0);
  EXPECT_NEAR(OptimalCompressionRatio(0.9), 10.0, 1e-9);
}

TEST(StorageModelTest, CompressionRatioDefinition) {
  EXPECT_DOUBLE_EQ(CompressionRatio(100, 100, 20000), 1.0);
  EXPECT_DOUBLE_EQ(CompressionRatio(100, 100, 10000), 2.0);
}

// The paper's Fig. 3 ordering at the representative 4096x4096 scale:
// CSR < Tiled-CSL < 1 <= SparTA < TCA-BME < optimal at 50% sparsity.
TEST(StorageModelTest, Fig3OrderingAt50PercentSparsity) {
  const int64_t m = 4096;
  const int64_t k = 4096;
  const double s = 0.5;
  const int64_t nnz = static_cast<int64_t>(m * k * (1 - s));
  const double cr_csr = CompressionRatio(m, k, CsrStorageModel(m, nnz));
  const double cr_csl =
      CompressionRatio(m, k, TiledCslStorageModel(m * k / 4096, nnz));
  const double cr_sparta = CompressionRatio(m, k, SpartaStorageModel(m, k, s));
  const double cr_tca = CompressionRatio(m, k, TcaBmeStorageModel(m, k, nnz));
  EXPECT_LT(cr_csr, cr_csl);
  EXPECT_LT(cr_csl, 1.0);
  EXPECT_GT(cr_sparta, 1.0);
  EXPECT_LT(cr_sparta, cr_tca);
  EXPECT_GT(cr_tca, 1.5);
  EXPECT_LT(cr_tca, OptimalCompressionRatio(s));
}

// TCA-BME keeps CR > 1 across the paper's whole 30-70% range.
TEST(StorageModelTest, TcaBmeCrAboveOneFrom30Percent) {
  for (double s : {0.3, 0.4, 0.5, 0.6, 0.7}) {
    const int64_t nnz = static_cast<int64_t>(4096 * 4096 * (1 - s));
    EXPECT_GT(CompressionRatio(4096, 4096, TcaBmeStorageModel(4096, 4096, nnz)), 1.0)
        << "s=" << s;
  }
}

// At extreme sparsity the bitmap overhead dominates and CSR wins — the
// limitation the paper concedes in §6.
TEST(StorageModelTest, CsrWinsAtExtremeSparsity) {
  const double s = 0.99;
  const int64_t nnz = static_cast<int64_t>(4096 * 4096 * (1 - s));
  const double cr_csr = CompressionRatio(4096, 4096, CsrStorageModel(4096, nnz));
  const double cr_tca = CompressionRatio(4096, 4096, TcaBmeStorageModel(4096, 4096, nnz));
  EXPECT_GT(cr_csr, cr_tca);
}

TEST(StorageModelTest, SpartaExpectationEdgeCases) {
  // Fully dense: every 4-group has 4 nonzeros -> 2 to CSR per group; a 4x4
  // matrix has 4 groups.
  EXPECT_DOUBLE_EQ(SpartaExpectedCsrNnz(4, 4, 0.0), 8.0);
  // Fully sparse: nothing to store.
  EXPECT_DOUBLE_EQ(SpartaExpectedCsrNnz(4096, 4096, 1.0), 0.0);
}

}  // namespace
}  // namespace spinfer
