#include "src/gpusim/timeline.h"

#include <gtest/gtest.h>

namespace spinfer {
namespace {

constexpr StageTimes kStages{/*load_w=*/4.0, /*load_x=*/2.0, /*decode=*/3.0,
                             /*mma=*/5.0};

TEST(TimelineTest, SerializedChainPerIteration) {
  PipelineConfig cfg;
  cfg.double_buffer = false;
  const TimelineResult r = SimulateKernelTimeline(kStages, cfg, 10);
  // One buffer: iteration i's loads wait for mma(i-1). Within an iteration
  // decode (3) still overlaps load_x (2), so the chain is
  // load_w (4) + max(load_x, decode) (3) + mma (5) = 12 per iteration.
  EXPECT_DOUBLE_EQ(r.total_time, 120.0);
  // The event-driven model is never slower than the closed-form serial bound.
  EXPECT_LE(r.total_time, PipelineTotalTime(kStages, cfg, 10));
}

TEST(TimelineTest, PipelinedApproachesSteadyStateBound) {
  PipelineConfig cfg;
  const int64_t iters = 200;
  const TimelineResult r = SimulateKernelTimeline(kStages, cfg, iters);
  const double steady = PipelineIterationTime(kStages, cfg);
  // Per-iteration cost converges to the bottleneck resource (mem = 6.0).
  EXPECT_NEAR(r.total_time / static_cast<double>(iters), steady, steady * 0.05);
}

TEST(TimelineTest, BottleneckResourceIsBusiest) {
  PipelineConfig cfg;
  const TimelineResult r = SimulateKernelTimeline(kStages, cfg, 100);
  // Memory (4+2 per iter) outweighs decode (3) and mma (5).
  EXPECT_GT(r.busy_fraction[static_cast<int>(Resource::kDram)], 0.9);
  EXPECT_GT(r.busy_fraction[static_cast<int>(Resource::kDram)],
            r.busy_fraction[static_cast<int>(Resource::kTensorCore)]);
  EXPECT_GT(r.busy_fraction[static_cast<int>(Resource::kTensorCore)],
            r.busy_fraction[static_cast<int>(Resource::kCudaAlu)]);
}

TEST(TimelineTest, DoubleBufferBeatsSerial) {
  PipelineConfig pipelined;
  PipelineConfig serial;
  serial.double_buffer = false;
  const double tp = SimulateKernelTimeline(kStages, pipelined, 50).total_time;
  const double ts = SimulateKernelTimeline(kStages, serial, 50).total_time;
  EXPECT_LT(tp, ts * 0.6);
}

TEST(TimelineTest, FineGrainedGroupsStartDecodeEarlier) {
  StageTimes decode_heavy{/*load_w=*/2.0, /*load_x=*/4.0, /*decode=*/5.0, /*mma=*/1.0};
  PipelineConfig fine;
  PipelineConfig coarse;
  coarse.fine_grained_groups = false;
  const double tf = SimulateKernelTimeline(decode_heavy, fine, 50).total_time;
  const double tc = SimulateKernelTimeline(decode_heavy, coarse, 50).total_time;
  EXPECT_LE(tf, tc);
}

TEST(TimelineTest, DependencyOrderHolds) {
  PipelineConfig cfg;
  const TimelineResult r = SimulateKernelTimeline(kStages, cfg, 20);
  // Reconstruct per-iteration stage intervals and check ordering.
  std::vector<double> load_w_end(20, -1), load_x_end(20, -1), decode_start(20, -1),
      mma_start(20, -1), mma_end(20, -1);
  for (const TimelineInterval& iv : r.intervals) {
    const auto i = static_cast<size_t>(iv.iteration);
    if (std::string(iv.stage) == "load_w") {
      load_w_end[i] = iv.end;
    } else if (std::string(iv.stage) == "load_x") {
      load_x_end[i] = iv.end;
    } else if (std::string(iv.stage) == "decode") {
      decode_start[i] = iv.start;
    } else {
      mma_start[i] = iv.start;
      mma_end[i] = iv.end;
    }
  }
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_GE(decode_start[i], load_w_end[i]) << i;
    EXPECT_GE(mma_start[i], load_x_end[i]) << i;
    if (i >= 2) {
      // Double buffering: loads can't outrun buffer retirement by 2.
      EXPECT_GE(load_w_end[i] - kStages.load_w + 1e-9, mma_end[i - 2] - 1e-9) << i;
    }
  }
}

TEST(TimelineTest, GanttRenders) {
  PipelineConfig cfg;
  const TimelineResult r = SimulateKernelTimeline(kStages, cfg, 8);
  const std::string gantt = r.RenderGantt(60);
  EXPECT_NE(gantt.find("DRAM"), std::string::npos);
  EXPECT_NE(gantt.find('M'), std::string::npos);
  EXPECT_NE(gantt.find('#'), std::string::npos);
}

TEST(TimelineTest, ZeroIterations) {
  PipelineConfig cfg;
  const TimelineResult r = SimulateKernelTimeline(kStages, cfg, 0);
  EXPECT_DOUBLE_EQ(r.total_time, 0.0);
  EXPECT_EQ(r.intervals.size(), 0u);
}

}  // namespace
}  // namespace spinfer
