#include "src/llm/kv_allocator.h"

#include <gtest/gtest.h>

#include "src/llm/attention.h"
#include "src/llm/weights.h"

namespace spinfer {
namespace {

KvAllocatorConfig SmallPool() {
  KvAllocatorConfig cfg;
  cfg.bytes_per_token = 1024;
  cfg.block_tokens = 16;
  cfg.capacity_bytes = 1024 * 16 * 100;  // 100 blocks
  return cfg;
}

TEST(KvAllocatorTest, PoolSizing) {
  const KvAllocator alloc(SmallPool());
  EXPECT_EQ(alloc.total_blocks(), 100);
  EXPECT_EQ(alloc.free_blocks(), 100);
  EXPECT_DOUBLE_EQ(alloc.Utilization(), 0.0);
}

TEST(KvAllocatorTest, PromptAllocationRoundsUpToBlocks) {
  KvAllocator alloc(SmallPool());
  ASSERT_TRUE(alloc.AddSequence(1, 17));  // 2 blocks for 17 tokens
  EXPECT_EQ(alloc.SequenceBlocks(1), 2);
  EXPECT_EQ(alloc.SequenceTokens(1), 17);
  EXPECT_EQ(alloc.used_blocks(), 2);
  EXPECT_EQ(alloc.WastedTokenSlots(), 32 - 17);
}

TEST(KvAllocatorTest, AppendGrowsBlockwise) {
  KvAllocator alloc(SmallPool());
  ASSERT_TRUE(alloc.AddSequence(1, 16));  // exactly one block
  EXPECT_EQ(alloc.SequenceBlocks(1), 1);
  ASSERT_TRUE(alloc.AppendToken(1));  // token 17 -> needs block 2
  EXPECT_EQ(alloc.SequenceBlocks(1), 2);
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(alloc.AppendToken(1));  // fills block 2, no new allocations
  }
  EXPECT_EQ(alloc.SequenceBlocks(1), 2);
}

TEST(KvAllocatorTest, ExhaustionRefusesAdmissionNotCorruption) {
  KvAllocator alloc(SmallPool());
  ASSERT_TRUE(alloc.AddSequence(1, 100 * 16 - 16));  // 99 blocks
  EXPECT_EQ(alloc.free_blocks(), 1);
  EXPECT_FALSE(alloc.AddSequence(2, 32));  // needs 2, only 1 free
  EXPECT_EQ(alloc.free_blocks(), 1);       // failed admission allocates nothing
  ASSERT_TRUE(alloc.AddSequence(3, 16));   // exactly the last block
  EXPECT_FALSE(alloc.AppendToken(3));      // pool exhausted at the boundary
  EXPECT_EQ(alloc.SequenceTokens(3), 16);  // failed append doesn't advance
}

TEST(KvAllocatorTest, RemoveRecyclesBlocks) {
  KvAllocator alloc(SmallPool());
  ASSERT_TRUE(alloc.AddSequence(1, 640));  // 40 blocks
  ASSERT_TRUE(alloc.AddSequence(2, 640));  // 40 blocks
  EXPECT_FALSE(alloc.CanFit(640));         // 20 free < 40 needed
  alloc.RemoveSequence(1);
  EXPECT_TRUE(alloc.CanFit(640));
  ASSERT_TRUE(alloc.AddSequence(3, 640));
  EXPECT_EQ(alloc.used_blocks(), 80);
}

TEST(KvAllocatorTest, ManySequencesChurn) {
  KvAllocator alloc(SmallPool());
  // Admit/retire waves; the free list must never leak blocks.
  for (int wave = 0; wave < 10; ++wave) {
    for (int64_t s = 0; s < 20; ++s) {
      ASSERT_TRUE(alloc.AddSequence(wave * 100 + s, 64));  // 4 blocks each
    }
    EXPECT_EQ(alloc.used_blocks(), 80);
    for (int64_t s = 0; s < 20; ++s) {
      alloc.RemoveSequence(wave * 100 + s);
    }
    EXPECT_EQ(alloc.free_blocks(), 100);
  }
}

TEST(KvAllocatorTest, TruncateReleasesTailBlocksAndKeepsPrefix) {
  KvAllocator alloc(SmallPool());
  ASSERT_TRUE(alloc.AddSequence(1, 50));  // 4 blocks (ceil(50/16))
  const std::vector<int32_t> before = *alloc.SequenceBlockList(1);
  ASSERT_EQ(before.size(), 4u);

  alloc.TruncateSequence(1, 20);  // back to 2 blocks
  EXPECT_EQ(alloc.SequenceTokens(1), 20);
  EXPECT_EQ(alloc.SequenceBlocks(1), 2);
  EXPECT_EQ(alloc.free_blocks(), 100 - 2);
  // The surviving blocks are the original prefix, in order — truncation must
  // not shuffle the mapping of earlier tokens.
  const std::vector<int32_t>* after = alloc.SequenceBlockList(1);
  ASSERT_NE(after, nullptr);
  ASSERT_EQ(after->size(), 2u);
  EXPECT_EQ((*after)[0], before[0]);
  EXPECT_EQ((*after)[1], before[1]);

  // Truncate to a count inside the current last block: no block released.
  alloc.TruncateSequence(1, 17);
  EXPECT_EQ(alloc.SequenceBlocks(1), 2);
  // Truncate to zero keeps the sequence registered but holds no blocks.
  alloc.TruncateSequence(1, 0);
  EXPECT_EQ(alloc.SequenceTokens(1), 0);
  EXPECT_EQ(alloc.SequenceBlocks(1), 0);
  EXPECT_EQ(alloc.free_blocks(), 100);
  // Regrowth after a rewind works like fresh appends.
  ASSERT_TRUE(alloc.AppendToken(1));
  EXPECT_EQ(alloc.SequenceTokens(1), 1);
  EXPECT_EQ(alloc.SequenceBlocks(1), 1);
}

TEST(KvAllocatorTest, BlockListIsStableUnderOtherSequencesChurn) {
  KvAllocator alloc(SmallPool());
  ASSERT_TRUE(alloc.AddSequence(7, 33));  // 3 blocks
  const std::vector<int32_t> pinned = *alloc.SequenceBlockList(7);
  for (int wave = 0; wave < 5; ++wave) {
    ASSERT_TRUE(alloc.AddSequence(100 + wave, 64));
    alloc.RemoveSequence(100 + wave);
  }
  const std::vector<int32_t>* now = alloc.SequenceBlockList(7);
  ASSERT_NE(now, nullptr);
  EXPECT_EQ(*now, pinned);
  EXPECT_EQ(alloc.SequenceBlockList(999), nullptr);  // unknown id
}

// Tie the allocator to the paper's memory story: the KV pool left on a
// 24 GB RTX4090 beside OPT-13B weights admits far more concurrent
// sequences under TCA-BME than under dense storage.
TEST(KvAllocatorTest, SparsityBuysConcurrentSequences) {
  const ModelConfig model = Opt13B();
  const uint64_t capacity = 24ull << 30;
  const uint64_t reserve = 2ull << 30;  // activations + runtime
  const uint64_t bytes_per_token =
      KvCacheBytes(model, 1, 1, 1);  // 2*layers*kv_dim*2B

  auto sequences_supported = [&](WeightFormat format, double sparsity) {
    const uint64_t weights = ModelWeightBytes(model, sparsity, format);
    if (weights + reserve >= capacity) {
      return static_cast<int64_t>(0);
    }
    KvAllocatorConfig cfg;
    cfg.bytes_per_token = bytes_per_token;
    cfg.capacity_bytes = capacity - weights - reserve;
    KvAllocator alloc(cfg);
    int64_t count = 0;
    while (alloc.AddSequence(count, 384)) {  // 128 in + 256 out tokens
      ++count;
    }
    return count;
  };

  const int64_t dense = sequences_supported(WeightFormat::kDense, 0.0);
  const int64_t tca = sequences_supported(WeightFormat::kTcaBme, 0.6);
  const int64_t quant = sequences_supported(WeightFormat::kTcaBmeQuant, 0.6);
  EXPECT_EQ(dense, 0);    // dense OPT-13B doesn't fit at all
  EXPECT_GT(tca, 20);     // SpInfer leaves room for a real batch
  EXPECT_GT(quant, tca);  // INT8 composition leaves even more
}

}  // namespace
}  // namespace spinfer
