#include "src/format/tca_bme_quant.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/format/storage_model.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

TEST(TcaBmeQuantTest, MaskIsExactAfterRoundtrip) {
  Rng rng(211);
  const HalfMatrix w = HalfMatrix::RandomSparse(128, 128, 0.5, rng);
  const TcaBmeQuantMatrix enc = TcaBmeQuantMatrix::Encode(w);
  const HalfMatrix back = enc.Decode();
  for (int64_t r = 0; r < w.rows(); ++r) {
    for (int64_t c = 0; c < w.cols(); ++c) {
      EXPECT_EQ(w.at(r, c).IsZero(), back.at(r, c).IsZero()) << r << "," << c;
    }
  }
  EXPECT_EQ(enc.nnz(), w.CountNonZeros());
}

TEST(TcaBmeQuantTest, QuantizationErrorBoundedByTileScale) {
  Rng rng(212);
  const HalfMatrix w = HalfMatrix::RandomSparse(64, 64, 0.5, rng);
  const TcaBmeQuantMatrix enc = TcaBmeQuantMatrix::Encode(w);
  const HalfMatrix back = enc.Decode();
  // Per-tile absmax scaling: error <= scale/2 + FP16 rounding; scale is at
  // most tile_absmax / 127, and values are standard-normal-ish, so a loose
  // global bound of 4/127 * max|w| holds comfortably.
  float max_abs = 0.0f;
  for (int64_t i = 0; i < w.size(); ++i) {
    max_abs = std::max(max_abs, std::fabs(w.data()[i].ToFloat()));
  }
  for (int64_t i = 0; i < w.size(); ++i) {
    const float err = std::fabs(w.data()[i].ToFloat() - back.data()[i].ToFloat());
    EXPECT_LE(err, 4.0f * max_abs / 127.0f) << "i=" << i;
  }
}

TEST(TcaBmeQuantTest, RelativeErrorSmallOnAverage) {
  Rng rng(213);
  const HalfMatrix w = HalfMatrix::RandomSparse(256, 256, 0.6, rng);
  const TcaBmeQuantMatrix enc = TcaBmeQuantMatrix::Encode(w);
  const HalfMatrix back = enc.Decode();
  double num = 0.0;
  double den = 0.0;
  for (int64_t i = 0; i < w.size(); ++i) {
    const double a = w.data()[i].ToFloat();
    const double b = back.data()[i].ToFloat();
    num += (a - b) * (a - b);
    den += a * a;
  }
  EXPECT_LT(std::sqrt(num / den), 0.02);  // INT8 absmax: ~0.3-1% typical
}

TEST(TcaBmeQuantTest, CompressesBeyondFp16Variant) {
  Rng rng(214);
  const HalfMatrix w = HalfMatrix::RandomSparse(512, 512, 0.5, rng);
  const TcaBmeQuantMatrix q = TcaBmeQuantMatrix::Encode(w);
  const TcaBmeMatrix fp = TcaBmeMatrix::Encode(w);
  EXPECT_LT(q.StorageBytes(), fp.StorageBytes());
  // ~ 2B / (1B*0.5 + 0.125 + 0.03) ~ 3.0x.
  EXPECT_GT(q.CompressionRatio(), 2.5);
  EXPECT_GT(q.CompressionRatio(), fp.CompressionRatio() * 1.5);
}

TEST(TcaBmeQuantTest, StorageModelTracksEncoder) {
  Rng rng(215);
  const HalfMatrix w = HalfMatrix::RandomSparse(256, 256, 0.5, rng);
  const TcaBmeQuantMatrix enc = TcaBmeQuantMatrix::Encode(w);
  const uint64_t model = TcaBmeQuantStorageModel(256, 256, enc.nnz());
  EXPECT_GE(enc.StorageBytes(), model);
  EXPECT_LT(enc.StorageBytes() - model, 8ull * 16);  // alignment padding only
}

TEST(TcaBmeQuantTest, AllZeroAndDenseEdges) {
  HalfMatrix zero(64, 64);
  const TcaBmeQuantMatrix qz = TcaBmeQuantMatrix::Encode(zero);
  EXPECT_EQ(qz.nnz(), 0);
  const HalfMatrix back = qz.Decode();
  EXPECT_EQ(back.CountNonZeros(), 0);

  Rng rng(216);
  const HalfMatrix dense = HalfMatrix::RandomSparse(64, 64, 0.0, rng);
  const TcaBmeQuantMatrix qd = TcaBmeQuantMatrix::Encode(dense);
  EXPECT_EQ(qd.nnz(), 64 * 64);
}

}  // namespace
}  // namespace spinfer
