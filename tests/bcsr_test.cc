#include "src/format/bcsr.h"

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace spinfer {
namespace {

bool MatricesEqual(const HalfMatrix& a, const HalfMatrix& b) {
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      if (!(a.at(r, c) == b.at(r, c))) {
        return false;
      }
    }
  }
  return a.rows() == b.rows() && a.cols() == b.cols();
}

class BcsrRoundtripTest : public ::testing::TestWithParam<double> {};

TEST_P(BcsrRoundtripTest, EncodeDecodeRoundtrips) {
  Rng rng(61);
  const HalfMatrix w = HalfMatrix::RandomSparse(72, 88, GetParam(), rng);
  const BcsrMatrix enc = BcsrMatrix::Encode(w);
  EXPECT_TRUE(MatricesEqual(enc.Decode(), w));
}

INSTANTIATE_TEST_SUITE_P(Sparsities, BcsrRoundtripTest,
                         ::testing::Values(0.0, 0.5, 0.9, 0.99, 1.0));

TEST(BcsrTest, LowSparsityKeepsEveryBlock) {
  Rng rng(62);
  const HalfMatrix w = HalfMatrix::RandomSparse(64, 64, 0.5, rng);
  const BcsrMatrix enc = BcsrMatrix::Encode(w);
  // P[8x8 block all-zero] = 0.5^64 ~ 5e-20: all 64 blocks survive.
  EXPECT_EQ(enc.num_nonzero_blocks(), 8 * 8);
}

TEST(BcsrTest, ExtremeSparsitySkipsBlocks) {
  Rng rng(63);
  const HalfMatrix w = HalfMatrix::RandomSparse(512, 512, 0.999, rng);
  const BcsrMatrix enc = BcsrMatrix::Encode(w);
  const int64_t total_blocks = 64 * 64;
  // P[nonzero] = 1 - 0.999^64 ~ 0.062.
  EXPECT_LT(enc.num_nonzero_blocks(), total_blocks / 8);
  EXPECT_GT(enc.num_nonzero_blocks(), 0);
  EXPECT_TRUE(MatricesEqual(enc.Decode(), w));
}

TEST(BcsrTest, StorageCountsBlocks) {
  Rng rng(64);
  const HalfMatrix w = HalfMatrix::RandomSparse(64, 64, 0.5, rng);
  const BcsrMatrix enc = BcsrMatrix::Encode(w);
  EXPECT_EQ(enc.StorageBytes(), 128ull * enc.num_nonzero_blocks() +
                                    4ull * enc.num_nonzero_blocks() + 4ull * (8 + 1));
}

}  // namespace
}  // namespace spinfer
