#include "src/llm/tiny_transformer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/pruning/magnitude.h"
#include "src/pruning/pruner.h"

namespace spinfer {
namespace {

TinyConfig SmallConfig() {
  TinyConfig cfg;
  cfg.vocab = 64;
  cfg.hidden = 32;
  cfg.layers = 2;
  cfg.heads = 2;
  cfg.ffn = 64;
  cfg.max_seq = 16;
  return cfg;
}

TEST(TinyTransformerTest, ForwardShapesAndFiniteness) {
  const TinyTransformer model(SmallConfig(), 7);
  const FloatMatrix logits = model.Forward({1, 2, 3, 4}, MatmulBackend::kDense);
  EXPECT_EQ(logits.rows(), 4);
  EXPECT_EQ(logits.cols(), 64);
  for (int64_t i = 0; i < logits.size(); ++i) {
    EXPECT_TRUE(std::isfinite(logits.data()[i]));
  }
}

// The headline integration property: with identical weights, the dense
// reference backend and the TCA-BME CpuSpmm backend produce matching logits.
TEST(TinyTransformerTest, SparseBackendMatchesDense) {
  const TinyTransformer model(SmallConfig(), 8);
  const std::vector<int32_t> tokens = {5, 9, 13, 21, 34};
  const FloatMatrix dense = model.Forward(tokens, MatmulBackend::kDense);
  const FloatMatrix sparse = model.Forward(tokens, MatmulBackend::kTcaBmeCpu);
  for (int64_t i = 0; i < dense.size(); ++i) {
    EXPECT_NEAR(dense.data()[i], sparse.data()[i],
                1e-3 + 1e-3 * std::fabs(dense.data()[i]))
        << "logit " << i;
  }
}

TEST(TinyTransformerTest, BackendsAgreeAfterPruning) {
  TinyTransformer model(SmallConfig(), 9);
  model.PruneWeights(MagnitudePruner(), 0.6);
  EXPECT_NEAR(model.WeightSparsity(), 0.6, 0.02);
  const std::vector<int32_t> tokens = {3, 1, 4, 1, 5};
  const FloatMatrix dense = model.Forward(tokens, MatmulBackend::kDense);
  const FloatMatrix sparse = model.Forward(tokens, MatmulBackend::kTcaBmeCpu);
  for (int64_t i = 0; i < dense.size(); ++i) {
    EXPECT_NEAR(dense.data()[i], sparse.data()[i],
                1e-3 + 1e-3 * std::fabs(dense.data()[i]));
  }
}

TEST(TinyTransformerTest, GreedyDecodesIdenticallyOnBothBackends) {
  TinyTransformer model(SmallConfig(), 10);
  model.PruneWeights(MagnitudePruner(), 0.5);
  const std::vector<int32_t> prompt = {11, 22};
  const auto dense = model.Generate(prompt, 6, MatmulBackend::kDense);
  const auto sparse = model.Generate(prompt, 6, MatmulBackend::kTcaBmeCpu);
  EXPECT_EQ(dense, sparse);
  EXPECT_EQ(dense.size(), prompt.size() + 6);
}

TEST(TinyTransformerTest, PruningShrinksEncodedWeights) {
  TinyTransformer model(SmallConfig(), 11);
  const uint64_t before = model.EncodedWeightBytes();
  model.PruneWeights(MagnitudePruner(), 0.6);
  const uint64_t after = model.EncodedWeightBytes();
  EXPECT_LT(after, before);
  // At 60% sparsity the encoded form also beats the dense FP16 footprint.
  EXPECT_LT(after, model.DenseWeightBytes());
}

// The serving contract behind the decode bench: after one warm-up Forward,
// the matmul path (SpMM workspace + activation staging) never grows again at
// the same (or smaller) sequence lengths — zero heap allocations per step.
TEST(TinyTransformerTest, MatmulPathAllocationFreeAfterWarmup) {
  TinyTransformer model(SmallConfig(), 14);
  model.PruneWeights(MagnitudePruner(), 0.6);
  std::vector<int32_t> tokens = {1, 2, 3, 4, 5, 6, 7, 8};
  model.Forward(tokens, MatmulBackend::kTcaBmeCpu);  // warm-up at max shape
  const int64_t grows = model.MatmulScratchGrowCount();
  const uint64_t bytes = model.MatmulScratchCapacityBytes();
  EXPECT_GT(bytes, 0u);
  const FloatMatrix warm = model.Forward(tokens, MatmulBackend::kTcaBmeCpu);
  EXPECT_EQ(model.MatmulScratchGrowCount(), grows);
  EXPECT_EQ(model.MatmulScratchCapacityBytes(), bytes);
  // Shorter sequences (decode prefixes) must also fit the warmed scratch.
  tokens.resize(3);
  model.Forward(tokens, MatmulBackend::kTcaBmeCpu);
  EXPECT_EQ(model.MatmulScratchGrowCount(), grows);
  EXPECT_EQ(model.MatmulScratchCapacityBytes(), bytes);
  // And scratch reuse must not perturb results.
  tokens = {1, 2, 3, 4, 5, 6, 7, 8};
  const FloatMatrix again = model.Forward(tokens, MatmulBackend::kTcaBmeCpu);
  for (int64_t i = 0; i < warm.size(); ++i) {
    EXPECT_EQ(warm.data()[i], again.data()[i]);
  }
}

TEST(TinyTransformerTest, DeterministicAcrossInstances) {
  const TinyTransformer a(SmallConfig(), 12);
  const TinyTransformer b(SmallConfig(), 12);
  const FloatMatrix la = a.Forward({7, 8}, MatmulBackend::kDense);
  const FloatMatrix lb = b.Forward({7, 8}, MatmulBackend::kDense);
  for (int64_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(la.data()[i], lb.data()[i]);
  }
}

TEST(TinyTransformerTest, CausalityHoldsForPrefixes) {
  // Logits of earlier positions must not depend on later tokens.
  const TinyTransformer model(SmallConfig(), 13);
  const FloatMatrix full = model.Forward({1, 2, 3, 4}, MatmulBackend::kDense);
  const FloatMatrix prefix = model.Forward({1, 2}, MatmulBackend::kDense);
  for (int64_t t = 0; t < 2; ++t) {
    for (int64_t v = 0; v < 64; ++v) {
      EXPECT_NEAR(full.at(t, v), prefix.at(t, v), 1e-4);
    }
  }
}

}  // namespace
}  // namespace spinfer
