#include "src/numeric/fp16.h"

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace spinfer {
namespace {

TEST(Fp16Test, ZeroAndSign) {
  EXPECT_EQ(Half(0.0f).bits(), 0x0000);
  EXPECT_EQ(Half(-0.0f).bits(), 0x8000);
  EXPECT_TRUE(Half(0.0f).IsZero());
  EXPECT_TRUE(Half(-0.0f).IsZero());
  EXPECT_EQ(Half(0.0f), Half(-0.0f));
}

TEST(Fp16Test, ExactSmallIntegers) {
  for (int i = -2048; i <= 2048; ++i) {
    const Half h(static_cast<float>(i));
    EXPECT_EQ(h.ToFloat(), static_cast<float>(i)) << "i=" << i;
  }
}

TEST(Fp16Test, KnownBitPatterns) {
  EXPECT_EQ(Half(1.0f).bits(), 0x3c00);
  EXPECT_EQ(Half(-2.0f).bits(), 0xc000);
  EXPECT_EQ(Half(0.5f).bits(), 0x3800);
  EXPECT_EQ(Half(65504.0f).bits(), 0x7bff);  // max finite half
  EXPECT_EQ(Half(0.099975586f).bits(), 0x2e66);
}

TEST(Fp16Test, OverflowToInfinity) {
  EXPECT_TRUE(Half(65520.0f).IsInf());
  EXPECT_TRUE(Half(1e30f).IsInf());
  EXPECT_TRUE(Half(-1e30f).IsInf());
  EXPECT_EQ(Half(1e30f).bits(), 0x7c00);
  EXPECT_EQ(Half(-1e30f).bits(), 0xfc00);
  // 65519.996 rounds down to 65504 under RNE.
  EXPECT_FALSE(Half(65519.0f).IsInf());
}

TEST(Fp16Test, SubnormalRange) {
  // Smallest subnormal: 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(Half(tiny).bits(), 0x0001);
  EXPECT_EQ(Half(tiny).ToFloat(), tiny);
  // Half of it ties to even -> 0.
  EXPECT_TRUE(Half(tiny / 2).IsZero());
  // 0.75 * tiny rounds up to tiny.
  EXPECT_EQ(Half(tiny * 0.75f).bits(), 0x0001);
  // Largest subnormal.
  const float max_sub = std::ldexp(1023.0f, -24);
  EXPECT_EQ(Half(max_sub).bits(), 0x03ff);
  EXPECT_EQ(Half(max_sub).ToFloat(), max_sub);
}

TEST(Fp16Test, SubnormalToNormalRoundingCarry) {
  // Just below the smallest normal (2^-14) rounds up into the normal range.
  const float almost_normal = std::ldexp(1023.9f, -24);
  const Half h(almost_normal);
  EXPECT_EQ(h.bits(), 0x0400);  // smallest normal
}

TEST(Fp16Test, NanHandling) {
  const Half h(std::nanf(""));
  EXPECT_TRUE(h.IsNan());
  EXPECT_TRUE(std::isnan(h.ToFloat()));
  EXPECT_FALSE(h == h);
}

TEST(Fp16Test, InfinityRoundtrip) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(Half(inf).IsInf());
  EXPECT_EQ(Half(inf).ToFloat(), inf);
  EXPECT_EQ(Half(-inf).ToFloat(), -inf);
}

TEST(Fp16Test, RoundTripAllBitPatterns) {
  // Every finite half converts to float and back to the identical pattern.
  for (uint32_t bits = 0; bits <= 0xffff; ++bits) {
    const Half h = Half::FromBits(static_cast<uint16_t>(bits));
    if (h.IsNan()) {
      continue;
    }
    const Half back(h.ToFloat());
    EXPECT_EQ(back.bits(), h.bits()) << "bits=" << bits;
  }
}

TEST(Fp16Test, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half (1 + 2^-10);
  // RNE picks the even mantissa (1.0).
  EXPECT_EQ(Half(1.0f + std::ldexp(1.0f, -11)).bits(), 0x3c00);
  // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; RNE picks 1+2^-9.
  EXPECT_EQ(Half(1.0f + 3 * std::ldexp(1.0f, -11)).bits(), 0x3c02);
  // Anything strictly above the halfway point rounds up.
  EXPECT_EQ(Half(1.0f + std::ldexp(1.2f, -11)).bits(), 0x3c01);
}

TEST(Fp16Test, ConversionErrorBounded) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float f = static_cast<float>(rng.Uniform(-1000.0, 1000.0));
    const float g = Half(f).ToFloat();
    // Relative error of RNE conversion is at most 2^-11.
    EXPECT_LE(std::fabs(f - g), std::fabs(f) * std::ldexp(1.0f, -11) + 1e-7f) << f;
  }
}

TEST(Fp16Test, FloatSubnormalsFlushToZero) {
  EXPECT_TRUE(Half(std::ldexp(1.0f, -127)).IsZero());
  EXPECT_TRUE(Half(-std::ldexp(1.0f, -130)).IsZero());
}

}  // namespace
}  // namespace spinfer
