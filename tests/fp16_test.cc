#include "src/numeric/fp16.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace spinfer {
namespace {

TEST(Fp16Test, ZeroAndSign) {
  EXPECT_EQ(Half(0.0f).bits(), 0x0000);
  EXPECT_EQ(Half(-0.0f).bits(), 0x8000);
  EXPECT_TRUE(Half(0.0f).IsZero());
  EXPECT_TRUE(Half(-0.0f).IsZero());
  EXPECT_EQ(Half(0.0f), Half(-0.0f));
}

TEST(Fp16Test, ExactSmallIntegers) {
  for (int i = -2048; i <= 2048; ++i) {
    const Half h(static_cast<float>(i));
    EXPECT_EQ(h.ToFloat(), static_cast<float>(i)) << "i=" << i;
  }
}

TEST(Fp16Test, KnownBitPatterns) {
  EXPECT_EQ(Half(1.0f).bits(), 0x3c00);
  EXPECT_EQ(Half(-2.0f).bits(), 0xc000);
  EXPECT_EQ(Half(0.5f).bits(), 0x3800);
  EXPECT_EQ(Half(65504.0f).bits(), 0x7bff);  // max finite half
  EXPECT_EQ(Half(0.099975586f).bits(), 0x2e66);
}

TEST(Fp16Test, OverflowToInfinity) {
  EXPECT_TRUE(Half(65520.0f).IsInf());
  EXPECT_TRUE(Half(1e30f).IsInf());
  EXPECT_TRUE(Half(-1e30f).IsInf());
  EXPECT_EQ(Half(1e30f).bits(), 0x7c00);
  EXPECT_EQ(Half(-1e30f).bits(), 0xfc00);
  // 65519.996 rounds down to 65504 under RNE.
  EXPECT_FALSE(Half(65519.0f).IsInf());
}

TEST(Fp16Test, SubnormalRange) {
  // Smallest subnormal: 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(Half(tiny).bits(), 0x0001);
  EXPECT_EQ(Half(tiny).ToFloat(), tiny);
  // Half of it ties to even -> 0.
  EXPECT_TRUE(Half(tiny / 2).IsZero());
  // 0.75 * tiny rounds up to tiny.
  EXPECT_EQ(Half(tiny * 0.75f).bits(), 0x0001);
  // Largest subnormal.
  const float max_sub = std::ldexp(1023.0f, -24);
  EXPECT_EQ(Half(max_sub).bits(), 0x03ff);
  EXPECT_EQ(Half(max_sub).ToFloat(), max_sub);
}

TEST(Fp16Test, SubnormalToNormalRoundingCarry) {
  // Just below the smallest normal (2^-14) rounds up into the normal range.
  const float almost_normal = std::ldexp(1023.9f, -24);
  const Half h(almost_normal);
  EXPECT_EQ(h.bits(), 0x0400);  // smallest normal
}

TEST(Fp16Test, NanHandling) {
  const Half h(std::nanf(""));
  EXPECT_TRUE(h.IsNan());
  EXPECT_TRUE(std::isnan(h.ToFloat()));
  EXPECT_FALSE(h == h);
}

TEST(Fp16Test, InfinityRoundtrip) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(Half(inf).IsInf());
  EXPECT_EQ(Half(inf).ToFloat(), inf);
  EXPECT_EQ(Half(-inf).ToFloat(), -inf);
}

TEST(Fp16Test, RoundTripAllBitPatterns) {
  // Every finite half converts to float and back to the identical pattern.
  for (uint32_t bits = 0; bits <= 0xffff; ++bits) {
    const Half h = Half::FromBits(static_cast<uint16_t>(bits));
    if (h.IsNan()) {
      continue;
    }
    const Half back(h.ToFloat());
    EXPECT_EQ(back.bits(), h.bits()) << "bits=" << bits;
  }
}

TEST(Fp16Test, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half (1 + 2^-10);
  // RNE picks the even mantissa (1.0).
  EXPECT_EQ(Half(1.0f + std::ldexp(1.0f, -11)).bits(), 0x3c00);
  // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; RNE picks 1+2^-9.
  EXPECT_EQ(Half(1.0f + 3 * std::ldexp(1.0f, -11)).bits(), 0x3c02);
  // Anything strictly above the halfway point rounds up.
  EXPECT_EQ(Half(1.0f + std::ldexp(1.2f, -11)).bits(), 0x3c01);
}

TEST(Fp16Test, ConversionErrorBounded) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float f = static_cast<float>(rng.Uniform(-1000.0, 1000.0));
    const float g = Half(f).ToFloat();
    // Relative error of RNE conversion is at most 2^-11.
    EXPECT_LE(std::fabs(f - g), std::fabs(f) * std::ldexp(1.0f, -11) + 1e-7f) << f;
  }
}

TEST(Fp16Test, FloatSubnormalsFlushToZero) {
  EXPECT_TRUE(Half(std::ldexp(1.0f, -127)).IsZero());
  EXPECT_TRUE(Half(-std::ldexp(1.0f, -130)).IsZero());
}

// The fast-path contract: the lookup table behind ToFloat() must agree with
// the bit-twiddled reference conversion on every one of the 65,536 encodings,
// bit for bit (NaN payloads included — hence the bit_cast comparison rather
// than float ==).
TEST(Fp16Test, LutMatchesReferenceConversionExhaustively) {
  for (uint32_t b = 0; b <= 0xffffu; ++b) {
    const uint16_t bits = static_cast<uint16_t>(b);
    const float via_lut = Half::FromBits(bits).ToFloat();
    const float via_ref = fp16_detail::HalfToFloatBits(bits);
    ASSERT_EQ(std::bit_cast<uint32_t>(via_lut), std::bit_cast<uint32_t>(via_ref))
        << "half bits 0x" << std::hex << b;
  }
}

// Every half encoding must survive a half -> float -> half round trip with
// its exact bit pattern (infinities and NaN payloads included, except that
// signaling NaNs are quieted — bit 9 of the mantissa gets set).
TEST(Fp16Test, ExhaustiveRoundTripThroughFloat) {
  for (uint32_t b = 0; b <= 0xffffu; ++b) {
    const uint16_t bits = static_cast<uint16_t>(b);
    const Half h = Half::FromBits(bits);
    const uint16_t back = Half(h.ToFloat()).bits();
    if (h.IsNan()) {
      const uint16_t quieted = static_cast<uint16_t>(bits | 0x0200u);
      ASSERT_TRUE(back == quieted || back == static_cast<uint16_t>((bits & 0x8000u) | 0x7e00u))
          << "nan bits 0x" << std::hex << b;
    } else {
      ASSERT_EQ(back, bits) << "half bits 0x" << std::hex << b;
    }
  }
}

// Brute-force nearest-half oracle for finite floats: scans every finite half
// of the input's sign and picks the closest in double arithmetic, breaking
// exact ties toward the even encoding (adjacent representable halves have
// adjacent bit patterns, so "even significand" == "even bit pattern").
uint16_t NearestHalfBruteForce(float f) {
  const uint16_t sign = std::signbit(f) ? 0x8000u : 0x0000u;
  if (std::isnan(f)) {
    return static_cast<uint16_t>(sign | 0x7e00u);
  }
  const double target = std::fabs(static_cast<double>(f));
  // RNE overflow: 65520 is exactly halfway between 65504 (max finite, odd
  // significand) and 2^16 (even); the tie goes to the even value, which
  // overflows to infinity. Everything >= 65520 therefore maps to inf.
  if (std::isinf(f) || target >= 65520.0) {
    return static_cast<uint16_t>(sign | 0x7c00u);
  }
  uint16_t best = 0;
  double best_err = std::fabs(static_cast<double>(fp16_detail::HalfToFloatBits(0)) - target);
  for (uint32_t mag = 1; mag <= 0x7bffu; ++mag) {
    const double v = static_cast<double>(fp16_detail::HalfToFloatBits(static_cast<uint16_t>(mag)));
    const double err = std::fabs(v - target);
    if (err < best_err || (err == best_err && (mag & 1u) == 0)) {
      best = static_cast<uint16_t>(mag);
      best_err = err;
    }
  }
  return static_cast<uint16_t>(sign | best);
}

TEST(Fp16Test, FromFloatMatchesBruteForceNearest) {
  Rng rng(11);
  std::vector<float> samples;
  // Normal-range magnitudes, both signs, spanning the full half range.
  for (int i = 0; i < 120; ++i) {
    samples.push_back(static_cast<float>(rng.Uniform(-70000.0, 70000.0)));
  }
  // Small magnitudes around and below the subnormal boundary (2^-14).
  for (int i = 0; i < 80; ++i) {
    const int e = static_cast<int>(rng.Below(14)) + 14;  // 2^-14 .. 2^-27
    samples.push_back(std::ldexp(static_cast<float>(rng.Uniform(1.0, 2.0)), -e));
    samples.push_back(-samples.back());
  }
  // Exact halfway ties between adjacent finite halves: the midpoint needs 12
  // significand bits, which a float represents exactly.
  for (int i = 0; i < 80; ++i) {
    const uint16_t lo = static_cast<uint16_t>(rng.Below(0x7bff));
    const double mid = (static_cast<double>(fp16_detail::HalfToFloatBits(lo)) +
                        static_cast<double>(fp16_detail::HalfToFloatBits(static_cast<uint16_t>(lo + 1)))) /
                       2.0;
    samples.push_back(static_cast<float>(mid));
    samples.push_back(-samples.back());
  }
  // Boundary cases by hand.
  samples.push_back(65519.996f);
  samples.push_back(65520.0f);
  samples.push_back(-65520.0f);
  samples.push_back(std::ldexp(1.0f, -25));  // tie at half the smallest subnormal
  for (const float f : samples) {
    ASSERT_EQ(Half(f).bits(), NearestHalfBruteForce(f)) << "f=" << f;
  }
}

}  // namespace
}  // namespace spinfer
