#include "src/gpusim/cost_model.h"

#include <gtest/gtest.h>

#include "src/gpusim/device_spec.h"

namespace spinfer {
namespace {

KernelTraits BasicTraits() {
  KernelTraits t;
  t.name = "test";
  t.bw_eff = 0.9;
  t.tc_eff_max = 0.8;
  t.tc_n_sat = 16.0;
  t.uses_tensor_core = true;
  t.decode_serial_fraction = 0.5;
  t.fixed_us = 2.0;
  return t;
}

TEST(CostModelTest, MemoryBoundTimeMatchesHandComputation) {
  const DeviceSpec dev = Rtx4090();
  KernelWork w;
  w.dram_bytes_read = 100'000'000;  // 100 MB
  w.flops = 1;                      // negligible compute
  w.n = 16;
  const TimeBreakdown t = EstimateKernelTime(BasicTraits(), w, dev);
  // 1e8 B / (1008 GB/s * 0.9) = 110.2 us.
  EXPECT_NEAR(t.mem_us, 1e8 / (1008.0 * 0.9 * 1e3), 0.01);
  EXPECT_NEAR(t.total_us, t.mem_us + 2.0, 0.01);
  EXPECT_NEAR(t.bw_utilization, 0.9 * t.mem_us / t.total_us, 0.01);
}

TEST(CostModelTest, ComputeBoundAtLargeN) {
  const DeviceSpec dev = Rtx4090();
  KernelWork w;
  w.dram_bytes_read = 1000;
  w.flops = 100ull * 1000 * 1000 * 1000 * 10;  // 1 TFLOP
  w.n = 4096;
  const TimeBreakdown t = EstimateKernelTime(BasicTraits(), w, dev);
  EXPECT_GT(t.compute_us, t.mem_us);
  // eff(4096) = 0.8 * (1 - exp(-4096/16)) ~= 0.8 (fully saturated).
  EXPECT_NEAR(t.compute_us, 1e12 / (165.2e12 * 0.8) * 1e6, 1.0);
}

TEST(CostModelTest, TcEfficiencyGrowsWithN) {
  const DeviceSpec dev = Rtx4090();
  KernelWork w;
  w.dram_bytes_read = 1000;
  w.flops = 1ull << 40;
  w.n = 8;
  const double t8 = EstimateKernelTime(BasicTraits(), w, dev).compute_us;
  w.n = 64;
  const double t64 = EstimateKernelTime(BasicTraits(), w, dev).compute_us;
  w.n = 1024;
  const double t1024 = EstimateKernelTime(BasicTraits(), w, dev).compute_us;
  EXPECT_GT(t8, t64);
  EXPECT_GT(t64, t1024);
}

TEST(CostModelTest, SerialDecodeAddsToTotal) {
  const DeviceSpec dev = Rtx4090();
  KernelWork w;
  w.dram_bytes_read = 100'000'000;
  w.flops = 1;
  w.decode_ops = 41'300'000;  // exactly 1 us of INT32 work on RTX4090
  w.n = 16;
  KernelTraits t = BasicTraits();
  t.decode_serial_fraction = 1.0;
  const TimeBreakdown serial = EstimateKernelTime(t, w, dev);
  t.decode_serial_fraction = 0.0;
  const TimeBreakdown overlapped = EstimateKernelTime(t, w, dev);
  EXPECT_NEAR(serial.total_us - overlapped.total_us, 1.0, 0.01);
}

TEST(CostModelTest, OverlappedDecodeHiddenUnderMemory) {
  const DeviceSpec dev = Rtx4090();
  KernelWork w;
  w.dram_bytes_read = 100'000'000;
  w.flops = 1;
  w.decode_ops = 413'000;  // 0.01 us << mem time
  w.n = 16;
  KernelTraits t = BasicTraits();
  t.decode_serial_fraction = 0.0;
  const TimeBreakdown with = EstimateKernelTime(t, w, dev);
  w.decode_ops = 0;
  const TimeBreakdown without = EstimateKernelTime(t, w, dev);
  EXPECT_DOUBLE_EQ(with.total_us, without.total_us);
}

TEST(CostModelTest, CudaCoreKernelUsesCudaThroughput) {
  const DeviceSpec dev = Rtx4090();
  KernelTraits t = BasicTraits();
  t.uses_tensor_core = false;
  t.cuda_eff = 0.5;
  KernelWork w;
  w.dram_bytes_read = 1;
  w.flops = 413ull * 1000 * 1000 * 100;  // 41.3 GFLOP
  w.n = 16;
  const TimeBreakdown b = EstimateKernelTime(t, w, dev);
  EXPECT_NEAR(b.compute_us, 41.3e9 / (82.6e12 * 0.5) * 1e6, 0.1);
  EXPECT_EQ(b.tc_utilization, 0.0);
}

TEST(DeviceSpecTest, Presets) {
  EXPECT_EQ(Rtx4090().sm_count, 128);
  EXPECT_EQ(A6000().interconnect, Interconnect::kNvlink);
  EXPECT_EQ(Rtx4090().interconnect, Interconnect::kPcie);
  EXPECT_EQ(DeviceByName("rtx4090").name, "RTX4090");
  EXPECT_EQ(DeviceByName("a6000").name, "A6000");
  EXPECT_GT(Rtx4090().PeakMmaPerSecond(), 1e9);
}

}  // namespace
}  // namespace spinfer
