// Equivalence proof for the fast-path warp decoder: SmbdDecodeTcTile's
// single-pass prefix-popcount implementation must be indistinguishable —
// outputs, per-quadrant load counts, and PerfCounters — from a reference
// decode assembled lane-by-lane from the retained SmbdDecodeLane primitive,
// across the paper's whole sparsity range.
#include "src/core/smbd.h"

#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/format/tca_bme.h"
#include "src/gpusim/perf_counters.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

// Compressed value run for a bitmap; value at bit b is b + 0.5 scaled into
// half range so every slot is distinct and exactly representable.
std::vector<Half> CompressBitmap(uint64_t bitmap, Rng& rng) {
  std::vector<Half> values;
  for (int b = 0; b < 64; ++b) {
    if ((bitmap >> b) & 1ull) {
      values.push_back(Half(static_cast<float>(rng.Uniform(-4.0, 4.0))));
    }
  }
  // Canary past the run's end: a correct decoder never reads it.
  values.push_back(Half(12345.0f));
  return values;
}

// Warp-level reference decode: 32 independent SmbdDecodeLane calls per
// quadrant, charging counters exactly as the pre-fast-path implementation
// did (per quadrant: two PopC ops, eight ALU ops, two predicated LDS
// phases, and one 2-byte shared-memory read per value load).
void ReferenceDecodeTcTile(const uint64_t bitmaps[4],
                           const Half* const quadrant_values[4],
                           MmaAFragment frag[kWarpSize], PerfCounters* counters,
                           int lane_loads[4][kWarpSize]) {
  for (int q = 0; q < 4; ++q) {
    uint64_t total_loads = 0;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      Half out[2];
      int loads = 0;
      SmbdDecodeLane(bitmaps[q], lane, quadrant_values[q], out, &loads);
      frag[lane].a[q * 2 + 0] = out[0];
      frag[lane].a[q * 2 + 1] = out[1];
      lane_loads[q][lane] = loads;
      total_loads += static_cast<uint64_t>(loads);
    }
    if (counters != nullptr) {
      counters->popc_ops += 2;
      counters->alu_ops += 8;
      counters->lds_instrs += 2;
      counters->smem_bytes_read += total_loads * sizeof(Half);
    }
  }
}

uint64_t RandomBitmap(Rng& rng, double density) {
  uint64_t bitmap = 0;
  for (int b = 0; b < 64; ++b) {
    if (rng.Bernoulli(density)) {
      bitmap |= 1ull << b;
    }
  }
  return bitmap;
}

TEST(SmbdEquivalenceTest, FastPathMatchesPerLaneReferenceAcrossDensities) {
  Rng rng(4242);
  // 30% .. 99% density covers the paper's 1%..70%-sparsity operating range
  // from both ends, plus the degenerate all-set / all-clear corners below.
  const double densities[] = {0.30, 0.45, 0.60, 0.75, 0.90, 0.99};
  for (const double density : densities) {
    for (int trial = 0; trial < 25; ++trial) {
      uint64_t bitmaps[4];
      std::vector<Half> runs[4];
      const Half* ptrs[4];
      for (int q = 0; q < 4; ++q) {
        bitmaps[q] = RandomBitmap(rng, density);
        runs[q] = CompressBitmap(bitmaps[q], rng);
        ptrs[q] = runs[q].data();
      }

      MmaAFragment got[kWarpSize];
      PerfCounters got_counters;
      SmbdDecodeTcTile(bitmaps, ptrs, got, &got_counters);

      MmaAFragment want[kWarpSize];
      PerfCounters want_counters;
      int lane_loads[4][kWarpSize];
      ReferenceDecodeTcTile(bitmaps, ptrs, want, &want_counters, lane_loads);

      for (int lane = 0; lane < kWarpSize; ++lane) {
        for (int i = 0; i < 8; ++i) {
          ASSERT_EQ(got[lane].a[i].bits(), want[lane].a[i].bits())
              << "density=" << density << " trial=" << trial << " lane=" << lane
              << " reg_half=" << i;
        }
      }
      // Per-quadrant load counts: the fast path's only load-count signal is
      // smem_bytes_read, which must equal the summed per-lane loads — and
      // both must equal the bitmap's popcount (every stored value is loaded
      // exactly once per decode).
      uint64_t expected_bytes = 0;
      for (int q = 0; q < 4; ++q) {
        int quadrant_loads = 0;
        for (int lane = 0; lane < kWarpSize; ++lane) {
          quadrant_loads += lane_loads[q][lane];
        }
        ASSERT_EQ(quadrant_loads, std::popcount(bitmaps[q])) << "q=" << q;
        expected_bytes += static_cast<uint64_t>(quadrant_loads) * sizeof(Half);
      }
      EXPECT_EQ(got_counters.smem_bytes_read, expected_bytes);
      // Full counter struct must agree field-for-field.
      EXPECT_EQ(got_counters.popc_ops, want_counters.popc_ops);
      EXPECT_EQ(got_counters.alu_ops, want_counters.alu_ops);
      EXPECT_EQ(got_counters.lds_instrs, want_counters.lds_instrs);
      EXPECT_EQ(got_counters.smem_bytes_read, want_counters.smem_bytes_read);
      EXPECT_EQ(got_counters, want_counters);
    }
  }
}

TEST(SmbdEquivalenceTest, DegenerateBitmaps) {
  Rng rng(7);
  const uint64_t patterns[] = {0ull, ~0ull, 0x5555555555555555ull,
                               0xaaaaaaaaaaaaaaaaull, 1ull, 1ull << 63};
  for (const uint64_t pattern : patterns) {
    uint64_t bitmaps[4] = {pattern, ~pattern, pattern, ~pattern};
    std::vector<Half> runs[4];
    const Half* ptrs[4];
    for (int q = 0; q < 4; ++q) {
      runs[q] = CompressBitmap(bitmaps[q], rng);
      ptrs[q] = runs[q].data();
    }
    MmaAFragment got[kWarpSize];
    PerfCounters got_counters;
    SmbdDecodeTcTile(bitmaps, ptrs, got, &got_counters);

    MmaAFragment want[kWarpSize];
    PerfCounters want_counters;
    int lane_loads[4][kWarpSize];
    ReferenceDecodeTcTile(bitmaps, ptrs, want, &want_counters, lane_loads);

    for (int lane = 0; lane < kWarpSize; ++lane) {
      for (int i = 0; i < 8; ++i) {
        ASSERT_EQ(got[lane].a[i].bits(), want[lane].a[i].bits())
            << "pattern=" << pattern << " lane=" << lane << " i=" << i;
      }
    }
    EXPECT_EQ(got_counters, want_counters);
    EXPECT_EQ(got_counters.smem_bytes_read, want_counters.smem_bytes_read);
  }
}

}  // namespace
}  // namespace spinfer
