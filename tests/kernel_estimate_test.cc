// Tests that tie the analytical Estimate() paths to the functional
// simulators and to the paper's headline performance claims.
#include <cmath>

#include <gtest/gtest.h>

#include "src/baselines/kernel_registry.h"
#include "src/core/spinfer_kernel.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

double RelErr(double a, double b) { return std::fabs(a - b) / (std::fabs(b) + 1e-12); }

// The estimator's event counts must agree with the functional simulation.
TEST(KernelEstimateTest, SpInferEstimateMatchesFunctionalCounts) {
  Rng rng(131);
  const int64_t m = 128;
  const int64_t k = 256;
  const int64_t n = 16;
  const HalfMatrix w = HalfMatrix::RandomSparse(m, k, 0.5, rng);
  const HalfMatrix x = HalfMatrix::Random(k, n, rng, 0.5f);

  SpInferKernelConfig cfg;
  cfg.split_k = 2;
  const SpInferSpmmKernel kernel(cfg);
  PerfCounters run;
  kernel.Run(w, x, &run);

  SpmmProblem p;
  p.m = m;
  p.k = k;
  p.n = n;
  p.sparsity = 0.5;
  p.nnz = w.CountNonZeros();
  const KernelEstimate est = kernel.Estimate(p, Rtx4090());

  // Exact instruction-mix agreement.
  EXPECT_EQ(est.counters.mma_instrs, run.mma_instrs);
  EXPECT_EQ(est.counters.flops, run.flops);
  EXPECT_EQ(est.counters.popc_ops, run.popc_ops);
  EXPECT_EQ(est.counters.lds_instrs, run.lds_instrs);
  EXPECT_EQ(est.counters.ldsm_instrs, run.ldsm_instrs);
  EXPECT_EQ(est.counters.ldg_instrs, run.ldg_instrs);
  EXPECT_EQ(est.counters.dram_bytes_written, run.dram_bytes_written);
  // DRAM read bytes agree up to alignment-padding estimation.
  EXPECT_LT(RelErr(static_cast<double>(est.counters.dram_bytes_read),
                   static_cast<double>(run.dram_bytes_read)),
            0.01);
}

TEST(KernelEstimateTest, BaselineEstimatesMatchFunctionalBytes) {
  Rng rng(132);
  const int64_t m = 128;
  const int64_t k = 128;
  const int64_t n = 16;
  const HalfMatrix w = HalfMatrix::RandomSparse(m, k, 0.5, rng);
  const HalfMatrix x = HalfMatrix::Random(k, n, rng, 0.5f);
  SpmmProblem p;
  p.m = m;
  p.k = k;
  p.n = n;
  p.sparsity = 0.5;
  p.nnz = w.CountNonZeros();
  for (const char* name : {"cublas_tc", "sputnik", "cusparse", "smat"}) {
    const auto kernel = MakeKernel(name);
    PerfCounters run;
    kernel->Run(w, x, &run);
    const KernelEstimate est = kernel->Estimate(p, Rtx4090());
    EXPECT_LT(RelErr(static_cast<double>(est.counters.dram_bytes_read),
                     static_cast<double>(run.dram_bytes_read)),
              0.05)
        << name;
    EXPECT_EQ(est.counters.flops, run.flops) << name;
  }
}

// ---- Paper-shape properties of the modeled times. ---------------------------

SpmmProblem Problem(int64_t m, int64_t k, int64_t n, double s) {
  SpmmProblem p;
  p.m = m;
  p.k = k;
  p.n = n;
  p.sparsity = s;
  return p;
}

double KernelTimeUs(const std::string& name, const SpmmProblem& p, const DeviceSpec& dev) {
  return MakeKernel(name)->Estimate(p, dev).time.total_us;
}

// Paper abstract: SpInfer beats cuBLAS from 30% sparsity upward.
TEST(KernelEstimateTest, SpInferBeatsCublasFrom30Percent) {
  const DeviceSpec dev = Rtx4090();
  for (double s : {0.3, 0.4, 0.5, 0.6, 0.7}) {
    const SpmmProblem p = Problem(8192, 8192, 16, s);
    EXPECT_LT(KernelTimeUs("spinfer", p, dev), KernelTimeUs("cublas_tc", p, dev))
        << "s=" << s;
  }
}

// Fig. 1 / Fig. 10: Flash-LLM roughly ties cuBLAS at 50% and wins at 70%.
TEST(KernelEstimateTest, FlashLlmCrossoverNear50Percent) {
  const DeviceSpec dev = Rtx4090();
  const double t_cublas = KernelTimeUs("cublas_tc", Problem(8192, 8192, 16, 0.5), dev);
  const double t_fl_50 = KernelTimeUs("flash_llm", Problem(8192, 8192, 16, 0.5), dev);
  const double t_fl_70 = KernelTimeUs("flash_llm", Problem(8192, 8192, 16, 0.7), dev);
  EXPECT_NEAR(t_cublas / t_fl_50, 1.0, 0.25);
  EXPECT_GT(t_cublas / t_fl_70, 1.1);
}

// SpInfer's speedup grows with sparsity.
TEST(KernelEstimateTest, SpInferSpeedupMonotoneInSparsity) {
  const DeviceSpec dev = Rtx4090();
  double prev = 0.0;
  for (double s : {0.4, 0.5, 0.6, 0.7}) {
    const SpmmProblem p = Problem(8192, 8192, 16, s);
    const double speedup =
        KernelTimeUs("cublas_tc", p, dev) / KernelTimeUs("spinfer", p, dev);
    EXPECT_GT(speedup, prev) << "s=" << s;
    prev = speedup;
  }
}

// cuSPARSE is an order of magnitude off at LLM densities (paper: 18x).
TEST(KernelEstimateTest, CusparseFarBehind) {
  const DeviceSpec dev = Rtx4090();
  const SpmmProblem p = Problem(8192, 8192, 16, 0.5);
  EXPECT_GT(KernelTimeUs("cusparse", p, dev) / KernelTimeUs("spinfer", p, dev), 8.0);
}

// Fig. 11: SpInfer dominates SMaT at LLM sparsities; SMaT wins only in the
// extreme (>99.7%) regime.
TEST(KernelEstimateTest, SmatCrossoverAtExtremeSparsity) {
  const DeviceSpec dev = Rtx4090();
  const SpmmProblem p50 = Problem(8192, 8192, 16, 0.5);
  EXPECT_GT(KernelTimeUs("smat", p50, dev) / KernelTimeUs("spinfer", p50, dev), 1.5);
  const SpmmProblem p999 = Problem(8192, 8192, 16, 0.999);
  EXPECT_LT(KernelTimeUs("smat", p999, dev), KernelTimeUs("spinfer", p999, dev));
}

// Fig. 16: compute-bound prefill (large N) flips the result — SpInfer up to
// ~12% slower than cuBLAS, but never worse than that.
TEST(KernelEstimateTest, PrefillLargeNSlightlySlower) {
  const DeviceSpec dev = Rtx4090();
  const SpmmProblem p = Problem(28672, 8192, 4096, 0.5);
  const double ratio = KernelTimeUs("spinfer", p, dev) / KernelTimeUs("cublas_tc", p, dev);
  EXPECT_GT(ratio, 1.0);
  EXPECT_LT(ratio, 1.20);
}

// Table 1: the ablation variants are slower than the full kernel.
TEST(KernelEstimateTest, AblationsDegradeModeledTime) {
  const DeviceSpec dev = Rtx4090();
  SpmmProblem p = Problem(8192, 8192, 16, 0.6);
  SpInferKernelConfig full;
  SpInferKernelConfig no_smbd;
  no_smbd.smbd = false;
  SpInferKernelConfig no_pipe;
  no_pipe.async_pipe = false;
  const double t_full = SpInferSpmmKernel(full).Estimate(p, dev).time.total_us;
  const double t_no_smbd = SpInferSpmmKernel(no_smbd).Estimate(p, dev).time.total_us;
  const double t_no_pipe = SpInferSpmmKernel(no_pipe).Estimate(p, dev).time.total_us;
  EXPECT_GT(t_no_smbd, t_full);
  EXPECT_GT(t_no_pipe, t_full);
  // SMBD matters more than the async pipeline (10% vs 2% in Table 1).
  EXPECT_GT(t_no_smbd - t_full, t_no_pipe - t_full);
}

// Both devices support the evaluation; A6000 trends match (Fig. 10 bottom).
TEST(KernelEstimateTest, A6000TrendsMatch) {
  const DeviceSpec dev = A6000();
  const SpmmProblem p = Problem(8192, 8192, 16, 0.6);
  EXPECT_LT(KernelTimeUs("spinfer", p, dev), KernelTimeUs("cublas_tc", p, dev));
  EXPECT_LT(KernelTimeUs("spinfer", p, dev), KernelTimeUs("flash_llm", p, dev));
}

}  // namespace
}  // namespace spinfer
