// Serving engine v2: chunked prefill, shared-prefix KV reuse, cancellation.
//
// The load-bearing claims, each enforced here:
//   * MixedStep with prompt chunks is bit-identical to whole-prompt Prefill:
//     a sequence's first generated token and every subsequent decode token
//     are the same bits wherever the chunk boundaries fall and whatever
//     decode batch the chunks ride along with, at any thread count.
//   * The engine's per-request token streams are invariant under the
//     prefill_chunk_tokens knob, while the worst per-iteration stall
//     (peak_iter_ms — every decode sequence's inter-token gap) drops from
//     the whole prompt's prefill cost to one chunk's.
//   * Shared-prefix adoption changes which blocks back a sequence, never its
//     tokens: cached and uncached runs produce identical streams, the cached
//     run reports index hits and a >= 2x TTFT win on a shared-system-prompt
//     workload, and the pool fully reclaims either way.
//   * Cancel reaches queued and running requests, releases refcounted
//     blocks without corrupting co-resident adopters, and lands in the
//     report; reports stay byte-stable across thread counts with every v2
//     feature enabled.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/gpusim/device_spec.h"
#include "src/llm/model_config.h"
#include "src/llm/serving_engine.h"
#include "src/llm/tiny_transformer.h"
#include "src/pruning/magnitude.h"
#include "src/util/random.h"
#include "src/util/thread_pool.h"

namespace spinfer {
namespace {

TinyTransformer MakePrunedModel(uint64_t seed = 7, int64_t max_seq = 64) {
  TinyConfig cfg;
  cfg.max_seq = max_seq;  // shared-prefix workloads need room past 64 tokens
  TinyTransformer model(cfg, seed);
  model.PruneWeights(MagnitudePruner(), 0.6);
  return model;
}

std::vector<int32_t> RandomPrompt(Rng& rng, int64_t len, int64_t vocab) {
  std::vector<int32_t> p(static_cast<size_t>(len));
  for (int32_t& t : p) {
    t = static_cast<int32_t>(rng.Below(static_cast<uint64_t>(vocab)));
  }
  return p;
}

// Reference: prompt alone through whole-prompt Prefill, then `steps` batch-1
// decode iterations.
std::vector<int32_t> RunSingle(const TinyTransformer& model,
                               const std::vector<int32_t>& prompt, int steps) {
  PagedKvCache cache(model.KvCacheConfig(/*block_tokens=*/8, /*num_blocks=*/32));
  EXPECT_TRUE(cache.AddSequence(0, static_cast<int64_t>(prompt.size())));
  std::vector<int32_t> tokens;
  const FloatMatrix prefill =
      model.Prefill(prompt, MatmulBackend::kTcaBmeCpu, &cache, 0);
  tokens.push_back(GreedyToken(prefill, prefill.rows() - 1));
  std::vector<int32_t> next;
  for (int s = 0; s < steps; ++s) {
    model.DecodeStep({0}, {tokens.back()}, MatmulBackend::kTcaBmeCpu, &cache,
                     &next);
    tokens.push_back(next[0]);
  }
  return tokens;
}

// Chunk-prefills `prompt` in pieces of `chunk` positions while sequence A
// (already prefilled) decodes alongside, then decodes both as a batch.
// Returns {A's stream, B's stream}.
std::vector<std::vector<int32_t>> RunChunkedPair(
    const TinyTransformer& model, const std::vector<int32_t>& prompt_a,
    const std::vector<int32_t>& prompt_b, int64_t chunk, int steps) {
  PagedKvCache cache(model.KvCacheConfig(/*block_tokens=*/8, /*num_blocks=*/32));
  EXPECT_TRUE(cache.AddSequence(0, static_cast<int64_t>(prompt_a.size())));
  std::vector<std::vector<int32_t>> streams(2);
  const FloatMatrix pre_a =
      model.Prefill(prompt_a, MatmulBackend::kTcaBmeCpu, &cache, 0);
  streams[0].push_back(GreedyToken(pre_a, pre_a.rows() - 1));

  const int64_t len_b = static_cast<int64_t>(prompt_b.size());
  EXPECT_TRUE(cache.AddSequence(1, len_b));
  std::vector<int32_t> dec_next;
  std::vector<int32_t> chunk_next;
  int64_t pos = 0;
  int done_steps = 0;
  while (pos < len_b) {
    const int64_t take = std::min(chunk, len_b - pos);
    const std::vector<PrefillChunk> chunks = {
        PrefillChunk{1, &prompt_b, pos, take}};
    // A decodes one token in the same panel as B's chunk columns.
    model.MixedStep({0}, {streams[0].back()}, chunks, MatmulBackend::kTcaBmeCpu,
                    &cache, &dec_next, &chunk_next);
    streams[0].push_back(dec_next[0]);
    ++done_steps;
    pos += take;
    if (pos == len_b) {
      EXPECT_GE(chunk_next[0], 0);
      streams[1].push_back(chunk_next[0]);
    } else {
      EXPECT_EQ(chunk_next[0], -1);
    }
  }
  // Joint decode until both have `steps` post-prefill tokens.
  std::vector<int32_t> last = {streams[0].back(), streams[1].back()};
  for (int s = done_steps; s < steps; ++s) {
    model.DecodeStep({0, 1}, last, MatmulBackend::kTcaBmeCpu, &cache, &dec_next);
    streams[0].push_back(dec_next[0]);
    streams[1].push_back(dec_next[1]);
    last = dec_next;
  }
  for (int s = 0; s < done_steps; ++s) {
    model.DecodeStep({1}, {streams[1].back()}, MatmulBackend::kTcaBmeCpu,
                     &cache, &dec_next);
    streams[1].push_back(dec_next[0]);
  }
  return streams;
}

// Chunked prefill is the same computation as whole-prompt prefill: K/V rows
// are written per column and attention sees a causal horizon, so neither the
// chunk boundaries nor the decode batch the chunks ride with can change any
// sequence's bits — at any thread count.
TEST(ServingV2Test, MixedStepChunkedPrefillBitIdenticalToPrefill) {
  const TinyTransformer model = MakePrunedModel();
  Rng rng(17);
  const std::vector<int32_t> prompt_a =
      RandomPrompt(rng, 9, model.config().vocab);
  const std::vector<int32_t> prompt_b =
      RandomPrompt(rng, 13, model.config().vocab);
  const int kSteps = 14;  // > chunked-prefill iterations for every chunk size

  ThreadPool::SetGlobalThreads(1);
  const std::vector<int32_t> ref_a = RunSingle(model, prompt_a, kSteps);
  const std::vector<int32_t> ref_b = RunSingle(model, prompt_b, kSteps);

  for (int threads : {1, 2, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    // Chunk sizes off the block boundary (8), on it, and the whole prompt.
    for (int64_t chunk : {int64_t{1}, int64_t{3}, int64_t{8},
                          static_cast<int64_t>(prompt_b.size())}) {
      const auto streams =
          RunChunkedPair(model, prompt_a, prompt_b, chunk, kSteps);
      EXPECT_EQ(streams[0], ref_a) << "chunk=" << chunk << " threads=" << threads;
      EXPECT_EQ(streams[1], ref_b) << "chunk=" << chunk << " threads=" << threads;
    }
  }
  ThreadPool::SetGlobalThreads(0);
}

// A pure-chunk MixedStep (no decode columns) is exactly Prefill.
TEST(ServingV2Test, MixedStepPrefillOnlyMatchesPrefill) {
  const TinyTransformer model = MakePrunedModel();
  Rng rng(29);
  const std::vector<int32_t> prompt =
      RandomPrompt(rng, 11, model.config().vocab);
  const std::vector<int32_t> ref = RunSingle(model, prompt, 0);

  PagedKvCache cache(model.KvCacheConfig(8, 32));
  ASSERT_TRUE(cache.AddSequence(0, static_cast<int64_t>(prompt.size())));
  std::vector<int32_t> chunk_next;
  for (int64_t pos = 0; pos < 11; pos += 4) {
    const std::vector<PrefillChunk> chunks = {
        PrefillChunk{0, &prompt, pos, std::min<int64_t>(4, 11 - pos)}};
    model.MixedStep({}, {}, chunks, MatmulBackend::kTcaBmeCpu, &cache,
                    /*dec_next=*/nullptr, &chunk_next);
  }
  EXPECT_EQ(chunk_next[0], ref[0]);
}

ServingEngineConfig V2EngineConfig(const TinyConfig& model_cfg) {
  ServingEngineConfig cfg;
  cfg.max_batch = 4;
  cfg.kv_block_tokens = 8;
  cfg.kv_num_blocks = 64;
  cfg.cost.model = ModelConfigFor(model_cfg);
  cfg.cost.framework = Framework::kSpInfer;
  cfg.cost.device = Rtx4090();
  cfg.cost.sparsity = 0.6;
  return cfg;
}

PoissonTraffic MixedTraffic(uint64_t seed) {
  PoissonTraffic t;
  t.arrival_rate_rps = 30.0;
  t.horizon_s = 1.0;
  t.seed = seed;
  t.prompt_len_min = 4;
  t.prompt_len_max = 40;  // long enough to span many chunks
  t.max_new_min = 4;
  t.max_new_max = 10;
  return t;
}

// The chunk knob is a scheduling choice, not a numerics choice: every
// request's token stream is invariant under it. What does move is the worst
// per-iteration stall — bounded by one chunk instead of the longest prompt.
TEST(ServingV2Test, ChunkedPrefillPreservesStreamsAndBoundsStall) {
  const TinyTransformer model = MakePrunedModel();
  auto run = [&](int64_t chunk) {
    ServingEngineConfig cfg = V2EngineConfig(model.config());
    cfg.prefill_chunk_tokens = chunk;
    ServingEngine engine(&model, cfg);
    engine.InjectPoissonArrivals(MixedTraffic(3));
    const ExecServingReport report = engine.Run();
    EXPECT_EQ(report.completed + report.rejected, report.arrived);
    std::vector<std::vector<int32_t>> streams;
    for (const RequestRecord& r : engine.results()) {
      streams.push_back(r.generated);
    }
    return std::make_pair(report, streams);
  };

  ThreadPool::SetGlobalThreads(1);
  const auto unchunked = run(0);
  ASSERT_GT(unchunked.second.size(), 10u);
  double prev_peak = unchunked.first.peak_iter_ms;
  for (int64_t chunk : {int64_t{16}, int64_t{4}}) {
    const auto chunked = run(chunk);
    EXPECT_EQ(chunked.second, unchunked.second) << "chunk=" << chunk;
    EXPECT_EQ(chunked.first.completed, unchunked.first.completed);
    // Tighter chunks -> strictly smaller worst stall on this workload (the
    // longest prompt is 5x the larger chunk).
    EXPECT_LT(chunked.first.peak_iter_ms, prev_peak) << "chunk=" << chunk;
    prev_peak = chunked.first.peak_iter_ms;
  }

  // Byte-stable report + streams across thread counts with chunking on.
  auto stable = [&]() {
    ServingEngineConfig cfg = V2EngineConfig(model.config());
    cfg.prefill_chunk_tokens = 8;
    ServingEngine engine(&model, cfg);
    engine.InjectPoissonArrivals(MixedTraffic(3));
    const std::string report = engine.Run().ToString();
    std::vector<std::vector<int32_t>> streams;
    for (const RequestRecord& r : engine.results()) {
      streams.push_back(r.generated);
    }
    return std::make_pair(report, streams);
  };
  const auto baseline = stable();
  for (int threads : {2, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    const auto other = stable();
    EXPECT_EQ(other.first, baseline.first) << "threads=" << threads;
    EXPECT_EQ(other.second, baseline.second) << "threads=" << threads;
  }
  ThreadPool::SetGlobalThreads(0);
}

// Requests sharing a system prompt, arrivals staggered so the first arrival
// indexes the prefix while later ones adopt it. Used by the prefix-cache
// tests and mirrored (at 32 x 512 scale) by the serving_prefix_cache bench.
struct SharedPromptWorkload {
  std::vector<std::vector<int32_t>> prompts;
  std::vector<double> arrivals_s;
  std::vector<int64_t> max_new;
};

SharedPromptWorkload MakeSharedPromptWorkload(const TinyTransformer& model,
                                              int64_t requests,
                                              int64_t prefix_tokens,
                                              double spacing_s) {
  SharedPromptWorkload w;
  Rng rng(101);
  const std::vector<int32_t> prefix =
      RandomPrompt(rng, prefix_tokens, model.config().vocab);
  for (int64_t i = 0; i < requests; ++i) {
    std::vector<int32_t> prompt = prefix;
    // Unique tail: same length for every request so cached vs uncached
    // workloads differ only in block reuse, never in shape.
    for (int64_t t = 0; t < 4; ++t) {
      prompt.push_back(
          static_cast<int32_t>(rng.Below(static_cast<uint64_t>(
              model.config().vocab))));
    }
    w.prompts.push_back(std::move(prompt));
    w.arrivals_s.push_back(static_cast<double>(i) * spacing_s);
    w.max_new.push_back(6);
  }
  return w;
}

ExecServingReport RunSharedPrompt(
    const TinyTransformer& model, const SharedPromptWorkload& w,
    bool prefix_cache, int64_t max_batch, int64_t num_blocks,
    std::vector<std::vector<int32_t>>* streams,
    std::unique_ptr<ServingEngine>* engine_out = nullptr,
    const ModelConfig* price_as = nullptr) {
  ServingEngineConfig cfg = V2EngineConfig(model.config());
  cfg.max_batch = max_batch;
  cfg.kv_num_blocks = num_blocks;
  cfg.enable_prefix_cache = prefix_cache;
  if (price_as != nullptr) {
    cfg.cost.model = *price_as;
  }
  auto engine = std::make_unique<ServingEngine>(&model, cfg);
  for (size_t i = 0; i < w.prompts.size(); ++i) {
    engine->Submit(w.prompts[i], w.max_new[i], w.arrivals_s[i]);
  }
  const ExecServingReport report = engine->Run();
  streams->clear();
  for (const RequestRecord& r : engine->results()) {
    streams->push_back(r.generated);
  }
  if (engine_out != nullptr) {
    *engine_out = std::move(engine);
  }
  return report;
}

// Adopting indexed prefix blocks replaces recomputation with block reuse —
// and nothing else: streams match the uncached run bit for bit, hits and
// cached-token counts land in the report, TTFT improves >= 2x on this
// workload, and the pool fully reclaims (index included).
TEST(ServingV2Test, PrefixCacheBitIdenticalWithHitsAndTtftWin) {
  const TinyTransformer model = MakePrunedModel(7, /*max_seq=*/256);
  // 8 requests x 128-token shared prefix (16 blocks of 8) + 4-token tails;
  // arrivals land during the first request's prefill iteration, so every
  // later request admits at the boundary that indexed the prefix. The first
  // request decodes long enough to keep the prefix blocks referenced (and
  // indexed) until the last adopter has admitted.
  SharedPromptWorkload w = MakeSharedPromptWorkload(model, 8, 128, 0.0005);
  w.max_new[0] = 40;
  // Price the virtual clock as OPT-13B: at realistic model scale the
  // prompt's prefill cost dominates the per-iteration fixed terms, which is
  // the regime prefix caching targets. Execution still runs the tiny model,
  // so the bit-identity half of the test is unaffected.
  const ModelConfig price_as = Opt13B();

  ThreadPool::SetGlobalThreads(1);
  std::vector<std::vector<int32_t>> uncached_streams;
  const ExecServingReport uncached = RunSharedPrompt(
      model, w, /*prefix_cache=*/false, /*max_batch=*/8, /*num_blocks=*/256,
      &uncached_streams, /*engine_out=*/nullptr, &price_as);
  ASSERT_EQ(uncached.completed, 8);
  EXPECT_EQ(uncached.prefix_hit_blocks, 0);

  std::vector<std::vector<int32_t>> cached_streams;
  std::unique_ptr<ServingEngine> engine;
  const ExecServingReport cached = RunSharedPrompt(
      model, w, /*prefix_cache=*/true, /*max_batch=*/8, /*num_blocks=*/256,
      &cached_streams, &engine, &price_as);
  ASSERT_EQ(cached.completed, 8);

  // Same bits, different blocks.
  EXPECT_EQ(cached_streams, uncached_streams);
  // Every adopter reuses the full 16-block prefix: 7 x 16 = 112 block hits.
  EXPECT_EQ(cached.prefix_hit_blocks, 112);
  EXPECT_LT(cached.prefix_miss_blocks, uncached.prefix_miss_blocks);
  int64_t adopters = 0;
  for (const RequestRecord& r : engine->results()) {
    EXPECT_LE(r.ttft_ms, r.latency_ms);
    EXPECT_GE(r.first_token_s, r.admit_s);
    if (r.cached_prompt_tokens > 0) {
      EXPECT_EQ(r.cached_prompt_tokens, 128);
      ++adopters;
    }
  }
  EXPECT_EQ(adopters, 7);  // everyone but the first arrival

  // The acceptance-shaped claim at test scale: mean TTFT >= 2x better.
  EXPECT_GT(uncached.ttft.mean_ms, 2.0 * cached.ttft.mean_ms);

  // Full reclamation after drain, index included.
  EXPECT_EQ(engine->kv_cache().free_blocks(), 256);
  EXPECT_EQ(engine->kv_cache().indexed_blocks(), 0);
  EXPECT_EQ(engine->kv_cache().WastedTokenSlots(), 0);
  ThreadPool::SetGlobalThreads(0);
}

// Prefix-cached runs stay byte-stable across thread counts (the index walk,
// adoption, and CoW all live on the single-threaded scheduler path).
TEST(ServingV2Test, PrefixCacheReportByteStableAcrossThreads) {
  const TinyTransformer model = MakePrunedModel(7, /*max_seq=*/128);
  const SharedPromptWorkload w =
      MakeSharedPromptWorkload(model, 6, 64, 0.0005);
  auto run = [&]() {
    std::vector<std::vector<int32_t>> streams;
    const ExecServingReport r = RunSharedPrompt(
        model, w, /*prefix_cache=*/true, /*max_batch=*/4, /*num_blocks=*/128,
        &streams);
    return std::make_pair(r.ToString(), streams);
  };
  ThreadPool::SetGlobalThreads(1);
  const auto baseline = run();
  for (int threads : {2, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    const auto other = run();
    EXPECT_EQ(other.first, baseline.first) << "threads=" << threads;
    EXPECT_EQ(other.second, baseline.second) << "threads=" << threads;
  }
  ThreadPool::SetGlobalThreads(0);
}

// Cancel reaches a queued request (dropped before admission) and a running
// one (evicted at the next boundary, KV released); terminal states and the
// cancelled count land in the report, and conservation holds.
TEST(ServingV2Test, CancelQueuedAndRunningRequests) {
  const TinyTransformer model = MakePrunedModel();
  ServingEngineConfig cfg = V2EngineConfig(model.config());
  cfg.max_batch = 1;  // serialize: id 1 queues behind id 0
  const auto submit_all = [&](ServingEngine* engine) {
    Rng rng(59);
    engine->Submit(RandomPrompt(rng, 8, model.config().vocab), 40, 0.0);
    engine->Submit(RandomPrompt(rng, 8, model.config().vocab), 4, 0.0);
    engine->Submit(RandomPrompt(rng, 8, model.config().vocab), 4, 0.0);
  };
  // Reference run pins down the runner's flight window on the virtual
  // clock, so the mid-decode cancel time is derived, not guessed.
  ServingEngine reference(&model, cfg);
  submit_all(&reference);
  reference.Run();
  const RequestRecord& ref_runner = reference.results()[0];
  ASSERT_EQ(ref_runner.reason, FinishReason::kMaxTokens);
  const double mid_flight_s = (ref_runner.admit_s + ref_runner.finish_s) / 2.0;

  ServingEngine engine(&model, cfg);
  submit_all(&engine);
  const int64_t runner = 0, queued = 1, survivor = 2;
  engine.Cancel(queued, 0.0);
  engine.Cancel(runner, mid_flight_s);  // lands mid-decode of its 40 tokens
  engine.Cancel(12345, 0.0);            // unknown id: ignored
  const ExecServingReport report = engine.Run();

  EXPECT_EQ(report.cancelled, 2);
  EXPECT_EQ(report.completed, 1);
  EXPECT_EQ(report.completed + report.rejected + report.cancelled,
            report.arrived);
  const RequestRecord& q = engine.results()[static_cast<size_t>(queued)];
  EXPECT_EQ(q.reason, FinishReason::kCancelled);
  EXPECT_TRUE(q.generated.empty());
  EXPECT_EQ(q.admit_s, 0.0);
  const RequestRecord& r = engine.results()[static_cast<size_t>(runner)];
  EXPECT_EQ(r.reason, FinishReason::kCancelled);
  EXPECT_GT(r.generated.size(), 0u);   // was mid-flight
  EXPECT_LT(static_cast<int64_t>(r.generated.size()), r.max_new_tokens);
  const RequestRecord& s = engine.results()[static_cast<size_t>(survivor)];
  EXPECT_EQ(s.reason, FinishReason::kMaxTokens);
  EXPECT_EQ(s.generated.size(), 4u);

  // Cancelled sequences' blocks came back.
  EXPECT_EQ(engine.kv_cache().free_blocks(), cfg.kv_num_blocks);
  EXPECT_EQ(engine.kv_cache().WastedTokenSlots(), 0);
}

// Cancelling the request that seeded shared prefix blocks must not disturb
// the adopters: refcounts keep the blocks alive, and since token streams are
// schedule-independent, every surviving request generates exactly what it
// generated in the cancel-free run.
TEST(ServingV2Test, CancelSharedPrefixSeedLeavesAdoptersIntact) {
  const TinyTransformer model = MakePrunedModel(7, /*max_seq=*/128);
  SharedPromptWorkload w = MakeSharedPromptWorkload(model, 6, 64, 0.0005);
  w.max_new[0] = 40;  // long-lived seed: a wide window to cancel inside

  ThreadPool::SetGlobalThreads(1);
  std::vector<std::vector<int32_t>> without_cancel;
  std::unique_ptr<ServingEngine> reference;
  RunSharedPrompt(model, w, /*prefix_cache=*/true, /*max_batch=*/6,
                  /*num_blocks=*/128, &without_cancel, &reference);
  // Cancel the seed after every adopter admitted (holding refcounts on its
  // prefix blocks) but before the seed's own decode finishes.
  double last_admit_s = 0.0;
  for (const RequestRecord& r : reference->results()) {
    last_admit_s = std::max(last_admit_s, r.admit_s);
  }
  const double seed_finish_s = reference->results()[0].finish_s;
  ASSERT_LT(last_admit_s, seed_finish_s);
  const double cancel_at_s = (last_admit_s + seed_finish_s) / 2.0;

  ServingEngineConfig cfg = V2EngineConfig(model.config());
  cfg.max_batch = 6;
  cfg.kv_num_blocks = 128;
  cfg.enable_prefix_cache = true;
  ServingEngine engine(&model, cfg);
  for (size_t i = 0; i < w.prompts.size(); ++i) {
    engine.Submit(w.prompts[i], w.max_new[i], w.arrivals_s[i]);
  }
  engine.Cancel(0, cancel_at_s);
  const ExecServingReport report = engine.Run();

  EXPECT_EQ(report.cancelled, 1);
  EXPECT_EQ(report.completed, 5);
  EXPECT_GT(report.prefix_hit_blocks, 0);
  for (size_t i = 1; i < w.prompts.size(); ++i) {
    EXPECT_EQ(engine.results()[i].generated, without_cancel[i]) << "id=" << i;
    EXPECT_EQ(engine.results()[i].reason, FinishReason::kMaxTokens);
  }
  EXPECT_EQ(engine.kv_cache().free_blocks(), 128);
  EXPECT_EQ(engine.kv_cache().indexed_blocks(), 0);
  ThreadPool::SetGlobalThreads(0);
}

// TTFT is reported through the same interpolating percentile summary as
// end-to-end latency, and both appear in the deterministic report string.
TEST(ServingV2Test, TtftSummarizedInReport) {
  const TinyTransformer model = MakePrunedModel();
  ServingEngine engine(&model, V2EngineConfig(model.config()));
  engine.InjectPoissonArrivals(MixedTraffic(13));
  const ExecServingReport report = engine.Run();
  ASSERT_GT(report.completed, 5);
  EXPECT_GT(report.ttft.mean_ms, 0.0);
  EXPECT_LE(report.ttft.mean_ms, report.latency.mean_ms);
  EXPECT_LE(report.ttft.p50_ms, report.ttft.p95_ms);
  EXPECT_LE(report.ttft.p95_ms, report.ttft.p99_ms);
  const std::string s = report.ToString();
  EXPECT_NE(s.find("ttft_ms{"), std::string::npos);
  EXPECT_NE(s.find("cancelled=0"), std::string::npos);
  EXPECT_NE(s.find("peak_iter_ms="), std::string::npos);
}

}  // namespace
}  // namespace spinfer
