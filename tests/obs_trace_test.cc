#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/chrome_trace.h"
#include "src/obs/clock.h"

namespace spinfer {
namespace obs {
namespace {

// Every test begins and ends with a quiescent, empty tracer so they compose
// in any order within this binary.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracer::Global().Reset(); }
  void TearDown() override {
    Tracer::Global().Stop();
    Tracer::Global().Reset();
  }
};

TEST_F(TraceTest, DisabledByDefaultAndScopesRecordNothing) {
  EXPECT_FALSE(TracingEnabled());
  {
    TraceScope scope("never");
    EXPECT_FALSE(scope.active());
  }
  SPINFER_TRACE_SCOPE("never_macro");
  Tracer::Global().Record("never_direct", 0, 1);
  EXPECT_TRUE(Tracer::Global().Drain().empty());
}

TEST_F(TraceTest, FakeClockSpansHaveExactTimes) {
  FakeClock clock(1000);
  Tracer& tracer = Tracer::Global();
  tracer.Start(&clock);
  EXPECT_TRUE(TracingEnabled());
  {
    TraceScope outer("outer", "m", 7);
    EXPECT_TRUE(outer.active());
    EXPECT_EQ(outer.start_ns(), 1000u);
    clock.AdvanceNs(5000);
    {
      TraceScope inner("inner");
      clock.AdvanceNs(1500);
    }
    clock.AdvanceNs(500);
  }
  tracer.Stop();
  EXPECT_FALSE(TracingEnabled());

  const std::vector<TraceEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(), 2u);
  // Scopes record at destruction: inner closes first.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].start_ns, 6000u);
  EXPECT_EQ(events[0].dur_ns, 1500u);
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[1].start_ns, 1000u);
  EXPECT_EQ(events[1].dur_ns, 7000u);
  ASSERT_EQ(events[1].num_args, 1u);
  EXPECT_STREQ(events[1].args[0].name, "m");
  EXPECT_EQ(events[1].args[0].value, 7);
  EXPECT_EQ(events[0].tid, events[1].tid);
}

TEST_F(TraceTest, GoldenChromeTraceJson) {
  FakeClock clock(1000);
  Tracer& tracer = Tracer::Global();
  tracer.Start(&clock);
  {
    TraceScope outer("outer", "m", 7);
    clock.AdvanceNs(5000);
    {
      TraceScope inner("inner");
      clock.AdvanceNs(1500);
    }
    clock.AdvanceNs(500);
  }
  tracer.Stop();

  // Byte-exact: the writer rebases to the earliest span and formats µs with
  // fixed 3-decimal ns precision, so FakeClock makes the output a constant.
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"thread 0\"}},"
      "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":5.000,\"dur\":1.500,"
      "\"name\":\"inner\",\"cat\":\"spinfer\"},"
      "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":0.000,\"dur\":7.000,"
      "\"name\":\"outer\",\"cat\":\"spinfer\",\"args\":{\"m\":7}}"
      "]}\n";
  EXPECT_EQ(ChromeTraceWriter::ToJson(tracer.Drain()), expected);
}

TEST_F(TraceTest, EmptyTraceSerializesToEmptyEventArray) {
  EXPECT_EQ(ChromeTraceWriter::ToJson({}),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n");
}

TEST_F(TraceTest, WriterEscapesNamesAndArgNames) {
  TraceEvent e;
  e.name = "quote\"back\\slash\nend";
  e.start_ns = 0;
  e.dur_ns = 1;
  e.num_args = 1;
  e.args[0] = TraceArg{"arg\"name", -3};
  const std::string json = ChromeTraceWriter::ToJson({e});
  EXPECT_NE(json.find("\"name\":\"quote\\\"back\\\\slash\\nend\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"arg\\\"name\":-3"), std::string::npos) << json;
}

TEST_F(TraceTest, MultiThreadSpansInterleaveWithoutLossOrReorder) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 200;
  FakeClock clock(0);
  Tracer& tracer = Tracer::Global();
  tracer.Start(&clock);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        // start_ns encodes (thread, index) so the drain can verify per-thread
        // append order survived concurrent recording.
        const TraceArg arg{"i", i};
        tracer.Record("span", static_cast<uint64_t>(t) * 1000000 +
                                  static_cast<uint64_t>(i),
                      1, &arg, 1);
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  tracer.Stop();

  const std::vector<TraceEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
  // Drain is grouped by tid, events in append order within each tid.
  std::vector<int> seen_per_tid;
  uint32_t last_tid = events[0].tid;
  int index_in_tid = 0;
  for (const TraceEvent& e : events) {
    if (e.tid != last_tid) {
      seen_per_tid.push_back(index_in_tid);
      last_tid = e.tid;
      index_in_tid = 0;
    }
    EXPECT_EQ(e.args[0].value, index_in_tid);
    EXPECT_EQ(e.start_ns % 1000000, static_cast<uint64_t>(index_in_tid));
    ++index_in_tid;
  }
  seen_per_tid.push_back(index_in_tid);
  ASSERT_EQ(seen_per_tid.size(), static_cast<size_t>(kThreads));
  for (const int n : seen_per_tid) {
    EXPECT_EQ(n, kSpansPerThread);
  }
}

TEST_F(TraceTest, InternNameOutlivesTheTemporaryString) {
  Tracer& tracer = Tracer::Global();
  tracer.Start(nullptr);
  const char* name = nullptr;
  {
    std::string dynamic = "bench.";
    dynamic += "case_1";
    name = tracer.InternName(dynamic);
  }
  tracer.Record(name, 10, 5);
  tracer.Stop();
  const std::vector<TraceEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "bench.case_1");
}

TEST_F(TraceTest, ResetDropsEventsAndReArmsRecording) {
  FakeClock clock(0);
  Tracer& tracer = Tracer::Global();
  tracer.Start(&clock);
  tracer.Record("before", 0, 1);
  tracer.Stop();
  ASSERT_EQ(tracer.Drain().size(), 1u);

  tracer.Reset();
  EXPECT_TRUE(tracer.Drain().empty());

  tracer.Start(&clock);
  tracer.Record("after", 2, 3);
  tracer.Stop();
  const std::vector<TraceEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "after");
}

TEST_F(TraceTest, ArgListIsCappedAtMax) {
  FakeClock clock(0);
  Tracer& tracer = Tracer::Global();
  tracer.Start(&clock);
  {
    TraceScope scope("many_args");
    for (int i = 0; i < kTraceMaxArgs + 3; ++i) {
      scope.AddArg("x", i);
    }
  }
  tracer.Stop();
  const std::vector<TraceEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].num_args, static_cast<uint32_t>(kTraceMaxArgs));
}

}  // namespace
}  // namespace obs
}  // namespace spinfer
