// Prometheus text exposition (src/obs/prom_export).
//
// Asserts the three format obligations scrapers rely on: sanitized
// "spinfer_"-prefixed names ("_total" on counters), cumulative le-labelled
// histogram buckets ending in +Inf with _sum/_count, and byte-deterministic
// name-sorted output (goldened literally against a registry built by hand).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/obs/metrics.h"
#include "src/obs/prom_export.h"

namespace spinfer {
namespace {

TEST(PromExportTest, SanitizesAndPrefixesNames) {
  EXPECT_EQ(obs::PromMetricName("srv.ttft_ms"), "spinfer_srv_ttft_ms");
  EXPECT_EQ(obs::PromMetricName("srv.slo.kv occupancy"),
            "spinfer_srv_slo_kv_occupancy");
  EXPECT_EQ(obs::PromMetricName("already:fine_123"),
            "spinfer_already:fine_123");
  EXPECT_EQ(obs::PromMetricName("spinfer_native"), "spinfer_native");
  EXPECT_EQ(obs::PromMetricName(""), "spinfer_unnamed");
  EXPECT_EQ(obs::PromMetricName("9lives"), "spinfer_9lives");
}

TEST(PromExportTest, ExportGoldenIsByteExact) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.ResetForTest();
  reg.GetCounter("t.requests")->Add(7);
  reg.GetGauge("t.occupancy")->Set(0.25);
  obs::Histogram* h = reg.GetHistogram("t.lat_ms", {1.0, 2.0, 4.0});
  h->Record(0.5);   // bucket le=1
  h->Record(1.5);   // bucket le=2
  h->Record(3.0);   // bucket le=4
  h->Record(100.0); // overflow -> only +Inf

  const std::string expected =
      "# HELP spinfer_t_requests_total spinfer metric t.requests\n"
      "# TYPE spinfer_t_requests_total counter\n"
      "spinfer_t_requests_total 7\n"
      "# HELP spinfer_t_occupancy spinfer metric t.occupancy\n"
      "# TYPE spinfer_t_occupancy gauge\n"
      "spinfer_t_occupancy 0.25\n"
      "# HELP spinfer_t_lat_ms spinfer metric t.lat_ms\n"
      "# TYPE spinfer_t_lat_ms histogram\n"
      "spinfer_t_lat_ms_bucket{le=\"1\"} 1\n"
      "spinfer_t_lat_ms_bucket{le=\"2\"} 2\n"
      "spinfer_t_lat_ms_bucket{le=\"4\"} 3\n"
      "spinfer_t_lat_ms_bucket{le=\"+Inf\"} 4\n"
      "spinfer_t_lat_ms_sum 105\n"
      "spinfer_t_lat_ms_count 4\n";
  EXPECT_EQ(obs::PromExport(reg), expected);
  reg.ResetForTest();
}

TEST(PromExportTest, BucketsAreCumulativeAndCountMatchesInf) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.ResetForTest();
  obs::Histogram* h =
      reg.GetHistogram("c.lat", obs::Histogram::ExponentialBuckets(0.1, 2, 8));
  for (int i = 0; i < 100; ++i) {
    h->Record(0.05 * i);
  }
  const std::string text = obs::PromExport(reg);
  // Every bucket line's value must be non-decreasing down the series, and
  // the +Inf bucket must equal _count.
  uint64_t prev = 0;
  size_t pos = 0;
  int bucket_lines = 0;
  while ((pos = text.find("_bucket{le=", pos)) != std::string::npos) {
    const size_t space = text.find("} ", pos);
    const uint64_t v = std::stoull(text.substr(space + 2));
    EXPECT_GE(v, prev);
    prev = v;
    ++bucket_lines;
    pos = space;
  }
  EXPECT_EQ(bucket_lines, 9);  // 8 bounds + +Inf
  EXPECT_EQ(prev, h->Count());
  EXPECT_NE(text.find("spinfer_c_lat_count 100\n"), std::string::npos);
  reg.ResetForTest();
}

TEST(PromExportTest, WritePromFileRoundTrips) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.ResetForTest();
  reg.GetCounter("w.count")->Add(3);
  const std::string path = testing::TempDir() + "/metrics.prom";
  ASSERT_TRUE(obs::WritePromFile(path, reg));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string read_back(4096, '\0');
  const size_t n = std::fread(read_back.data(), 1, read_back.size(), f);
  std::fclose(f);
  read_back.resize(n);
  EXPECT_EQ(read_back, obs::PromExport(reg));
  reg.ResetForTest();
}

}  // namespace
}  // namespace spinfer
