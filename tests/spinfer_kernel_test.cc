#include "src/core/spinfer_kernel.h"

#include <gtest/gtest.h>

#include "src/numeric/compare.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

struct KernelCase {
  int64_t m;
  int64_t k;
  int64_t n;
  double sparsity;
  int split_k;
};

class SpInferKernelTest : public ::testing::TestWithParam<KernelCase> {};

TEST_P(SpInferKernelTest, MatchesReferenceGemm) {
  const KernelCase& tc = GetParam();
  Rng rng(101 + static_cast<uint64_t>(tc.m * 7 + tc.k * 3 + tc.n + tc.split_k));
  const HalfMatrix w = HalfMatrix::RandomSparse(tc.m, tc.k, tc.sparsity, rng);
  const HalfMatrix x = HalfMatrix::Random(tc.k, tc.n, rng, 0.5f);

  SpInferKernelConfig cfg;
  cfg.split_k = tc.split_k;
  const SpInferSpmmKernel kernel(cfg);
  PerfCounters counters;
  const FloatMatrix got = kernel.Run(w, x, &counters);
  const FloatMatrix want = ReferenceGemm(w, x);
  const CompareResult cmp = CompareMatrices(got, want, 2e-3, 5e-2);
  EXPECT_TRUE(cmp.ok) << cmp.ToString();
  EXPECT_GT(counters.mma_instrs, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpInferKernelTest,
    ::testing::Values(KernelCase{64, 64, 16, 0.5, 1},    // one GroupTile
                      KernelCase{128, 128, 16, 0.5, 1},  // grid of GroupTiles
                      KernelCase{128, 128, 16, 0.5, 2},  // split-K 2
                      KernelCase{128, 256, 8, 0.6, 4},   // split-K 4
                      KernelCase{64, 128, 1, 0.5, 1},    // n=1 decode shape
                      KernelCase{64, 64, 5, 0.5, 1},     // ragged n
                      KernelCase{100, 100, 16, 0.5, 1},  // ragged m,k (padding)
                      KernelCase{64, 64, 16, 0.0, 1},    // dense
                      KernelCase{64, 64, 16, 0.9, 1},    // high sparsity
                      KernelCase{64, 64, 16, 1.0, 1},    // all-zero weights
                      KernelCase{192, 64, 32, 0.4, 1},
                      KernelCase{64, 192, 24, 0.7, 3}));

TEST(SpInferKernelTest, SplitKInvariantToPartitioning) {
  Rng rng(111);
  const HalfMatrix w = HalfMatrix::RandomSparse(64, 256, 0.5, rng);
  const HalfMatrix x = HalfMatrix::Random(256, 8, rng, 0.5f);
  FloatMatrix base;
  for (int split : {1, 2, 4}) {
    SpInferKernelConfig cfg;
    cfg.split_k = split;
    const FloatMatrix out = SpInferSpmmKernel(cfg).Run(w, x, nullptr);
    if (split == 1) {
      base = out;
      continue;
    }
    const CompareResult cmp = CompareMatrices(out, base, 1e-4, 1e-3);
    EXPECT_TRUE(cmp.ok) << "split=" << split << " " << cmp.ToString();
  }
}

TEST(SpInferKernelTest, AblationVariantsStayCorrect) {
  // SMBD / AsyncPipe switches change the performance model, never numerics.
  Rng rng(112);
  const HalfMatrix w = HalfMatrix::RandomSparse(64, 64, 0.5, rng);
  const HalfMatrix x = HalfMatrix::Random(64, 16, rng, 0.5f);
  const FloatMatrix want = ReferenceGemm(w, x);
  for (bool smbd : {true, false}) {
    for (bool pipe : {true, false}) {
      SpInferKernelConfig cfg;
      cfg.smbd = smbd;
      cfg.async_pipe = pipe;
      const FloatMatrix got = SpInferSpmmKernel(cfg).Run(w, x, nullptr);
      EXPECT_TRUE(CompareMatrices(got, want, 2e-3, 5e-2).ok);
    }
  }
}

TEST(SpInferKernelTest, AlternateGroupTileGeometries) {
  Rng rng(113);
  const HalfMatrix w = HalfMatrix::RandomSparse(96, 96, 0.5, rng);
  const HalfMatrix x = HalfMatrix::Random(96, 16, rng, 0.5f);
  const FloatMatrix want = ReferenceGemm(w, x);
  for (const auto& [gr, gc] : {std::pair{16, 16}, {32, 32}, {64, 32}, {16, 64}}) {
    SpInferKernelConfig cfg;
    cfg.format.gt_rows = gr;
    cfg.format.gt_cols = gc;
    const FloatMatrix got = SpInferSpmmKernel(cfg).Run(w, x, nullptr);
    EXPECT_TRUE(CompareMatrices(got, want, 2e-3, 5e-2).ok) << gr << "x" << gc;
  }
}

TEST(SpInferKernelTest, RunEncodedAvoidsReencoding) {
  Rng rng(114);
  const HalfMatrix w = HalfMatrix::RandomSparse(64, 64, 0.5, rng);
  const HalfMatrix x = HalfMatrix::Random(64, 8, rng, 0.5f);
  const SpInferSpmmKernel kernel;
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w, kernel.config().format);
  const FloatMatrix a = kernel.RunEncoded(enc, x, nullptr);
  const FloatMatrix b = kernel.Run(w, x, nullptr);
  EXPECT_TRUE(CompareMatrices(a, b, 0.0, 0.0).ok);
}

TEST(SpInferKernelTest, CountersAccumulateAcrossRuns) {
  Rng rng(115);
  const HalfMatrix w = HalfMatrix::RandomSparse(64, 64, 0.5, rng);
  const HalfMatrix x = HalfMatrix::Random(64, 8, rng, 0.5f);
  const SpInferSpmmKernel kernel;
  PerfCounters c;
  kernel.Run(w, x, &c);
  const uint64_t once = c.mma_instrs;
  kernel.Run(w, x, &c);
  EXPECT_EQ(c.mma_instrs, 2 * once);
}

TEST(ChooseSplitKTest, FillsDeviceWithoutOverSlicing) {
  const DeviceSpec dev = Rtx4090();
  const TcaBmeConfig fmt;
  // Tall matrix already fills the device: no split.
  EXPECT_EQ(ChooseSplitK(65536, 4096, fmt, dev), 1);
  // Short-wide matrix needs split-K to occupy SMs.
  const int split = ChooseSplitK(4096, 16384, fmt, dev);
  EXPECT_GT(split, 1);
  EXPECT_LE(split, 16);
  // Never slice K below one GroupTile column.
  EXPECT_EQ(ChooseSplitK(64, 64, fmt, dev), 1);
}

}  // namespace
}  // namespace spinfer
