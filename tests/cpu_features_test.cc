#include "src/util/cpu_features.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace spinfer {
namespace {

// Runs ApplySimdOverride with a capture file for the warning channel and
// returns (result, warning text).
std::pair<SimdLevel, std::string> Apply(SimdLevel hw, const char* env) {
  std::FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  const SimdLevel got = ApplySimdOverride(hw, env, f);
  std::string text;
  std::rewind(f);
  char buf[512];
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    text += buf;
  }
  std::fclose(f);
  return {got, text};
}

TEST(CpuFeaturesTest, UnsetOverrideKeepsHardwareLevel) {
  EXPECT_EQ(Apply(SimdLevel::kAvx2, nullptr).first, SimdLevel::kAvx2);
  EXPECT_EQ(Apply(SimdLevel::kPortable, nullptr).first, SimdLevel::kPortable);
  EXPECT_EQ(Apply(SimdLevel::kAvx2, "").first, SimdLevel::kAvx2);
}

TEST(CpuFeaturesTest, PortableAndScalarNarrowDispatch) {
  for (const char* env : {"portable", "scalar"}) {
    const auto [level, warning] = Apply(SimdLevel::kAvx2, env);
    EXPECT_EQ(level, SimdLevel::kPortable) << env;
    EXPECT_TRUE(warning.empty()) << env << ": " << warning;
  }
}

TEST(CpuFeaturesTest, Avx2RequestCannotExceedHardware) {
  EXPECT_EQ(Apply(SimdLevel::kAvx2, "avx2").first, SimdLevel::kAvx2);
  // On a machine without AVX2 the request falls back instead of selecting an
  // unsupported tier.
  const auto [level, warning] = Apply(SimdLevel::kPortable, "avx2");
  EXPECT_EQ(level, SimdLevel::kPortable);
  EXPECT_TRUE(warning.empty()) << warning;
}

TEST(CpuFeaturesTest, UnrecognizedValueWarnsAndKeepsHardwareLevel) {
  // The motivating typo: SPINFER_SIMD=portble used to silently run AVX2
  // while the user believed they were testing the portable path.
  const auto [level, warning] = Apply(SimdLevel::kAvx2, "portble");
  EXPECT_EQ(level, SimdLevel::kAvx2);
  EXPECT_NE(warning.find("portble"), std::string::npos) << warning;
  EXPECT_NE(warning.find("unrecognized"), std::string::npos) << warning;
  EXPECT_NE(warning.find("avx2"), std::string::npos)
      << "warning should name the level actually dispatched: " << warning;
}

TEST(CpuFeaturesTest, NullWarnStreamSuppressesOutputNotBehavior) {
  EXPECT_EQ(ApplySimdOverride(SimdLevel::kAvx2, "bogus", nullptr),
            SimdLevel::kAvx2);
}

TEST(CpuFeaturesTest, ActiveLevelIsConsistentWithDetectedFeatures) {
  // ActiveSimdLevel() may be narrowed by the environment, but can never
  // exceed what the hardware reports.
  const CpuFeatures& f = GetCpuFeatures();
  const SimdLevel hw =
      (f.avx2 && f.fma && f.f16c) ? SimdLevel::kAvx2 : SimdLevel::kPortable;
  EXPECT_LE(static_cast<int>(ActiveSimdLevel()), static_cast<int>(hw));
}

TEST(CpuFeaturesTest, SummaryMentionsDispatchLevel) {
  const std::string s = CpuFeaturesSummary();
  EXPECT_NE(s.find("dispatch: "), std::string::npos) << s;
  EXPECT_NE(s.find(SimdLevelName(ActiveSimdLevel())), std::string::npos) << s;
}

}  // namespace
}  // namespace spinfer
