// Flight recorder: ring semantics, dump rendering, engine integration, and
// the SPINFER_CHECK crash-dump path (src/util/crash_dump.h).
//
// The death test is the acceptance scenario for the crash hook: a
// SPINFER_CHECK failure in a serving harness with the recorder enabled must
// leave the last scheduler iterations — batch composition and KV occupancy —
// on stderr before the abort.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/gpusim/device_spec.h"
#include "src/llm/serving_engine.h"
#include "src/llm/tiny_transformer.h"
#include "src/obs/flight_recorder.h"
#include "src/pruning/magnitude.h"
#include "src/util/check.h"
#include "src/util/crash_dump.h"

namespace spinfer {
namespace {

obs::IterationSnapshot Snap(int64_t iter) {
  obs::IterationSnapshot s;
  s.iter = iter;
  s.vt_s = 0.001 * static_cast<double>(iter + 1);
  s.cost_ms = 1.0;
  s.batch = 2;
  s.decode_seqs = 1;
  s.prefill_seqs = 1;
  s.chunk_tokens = 8;
  s.admitted = iter == 0 ? 2 : 0;
  s.queue_depth = 3;
  s.kv_used_blocks = 10 + iter;
  s.kv_total_blocks = 64;
  s.kv_wasted_slots = 5;
  s.batch_ids = {0, 1};
  if (iter == 0) {
    s.admitted_ids = {0, 1};
  }
  return s;
}

TEST(FlightRecorderTest, RingKeepsLastCapacitySnapshotsOldestFirst) {
  obs::FlightRecorder rec(4);
  EXPECT_EQ(rec.capacity(), 4);
  for (int64_t i = 0; i < 10; ++i) {
    rec.Record(Snap(i));
  }
  EXPECT_EQ(rec.recorded(), 10);
  const std::vector<obs::IterationSnapshot> snaps = rec.Snapshots();
  ASSERT_EQ(snaps.size(), 4u);
  for (size_t i = 0; i < snaps.size(); ++i) {
    EXPECT_EQ(snaps[i].iter, 6 + static_cast<int64_t>(i));
  }
}

TEST(FlightRecorderTest, DumpGoldenIsByteExact) {
  obs::FlightRecorder rec(2);
  rec.Record(Snap(0));
  rec.Record(Snap(1));
  rec.Record(Snap(2));  // evicts iter 0
  const std::string expected =
      "[flight-recorder] 2 of 3 iterations retained (capacity 2)\n"
      "iter=1 vt_ms=2.000000 cost_ms=1.000000 batch=2 decode=1 prefill=1 "
      "chunk_tokens=8 admitted=0 rejected=0 queue=3 kv=11/64 blocks "
      "wasted_slots=5 ids=[0,1] admitted_ids=[]\n"
      "iter=2 vt_ms=3.000000 cost_ms=1.000000 batch=2 decode=1 prefill=1 "
      "chunk_tokens=8 admitted=0 rejected=0 queue=3 kv=12/64 blocks "
      "wasted_slots=5 ids=[0,1] admitted_ids=[]\n";
  EXPECT_EQ(rec.Dump(), expected);
}

TEST(FlightRecorderTest, DumpToFileMatchesDump) {
  obs::FlightRecorder rec(2);
  rec.Record(Snap(0));
  const std::string path = testing::TempDir() + "/flight_dump.txt";
  ASSERT_TRUE(rec.DumpToFile(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string read_back(4096, '\0');
  const size_t n = std::fread(read_back.data(), 1, read_back.size(), f);
  std::fclose(f);
  read_back.resize(n);
  EXPECT_EQ(read_back, rec.Dump());
}

// ---------------------------------------------------------------------------
// Engine integration.

TinyTransformer MakeModel() {
  TinyConfig cfg;
  cfg.max_seq = 64;
  TinyTransformer model(cfg, 7);
  model.PruneWeights(MagnitudePruner(), 0.6);
  return model;
}

ServingEngineConfig RecorderConfig(const TinyConfig& model_cfg,
                                   int64_t capacity) {
  ServingEngineConfig cfg;
  cfg.max_batch = 4;
  cfg.kv_block_tokens = 8;
  cfg.kv_num_blocks = 64;
  cfg.cost.model = ModelConfigFor(model_cfg);
  cfg.cost.framework = Framework::kSpInfer;
  cfg.cost.device = Rtx4090();
  cfg.cost.sparsity = 0.6;
  cfg.obs.flight_recorder_iters = capacity;
  return cfg;
}

TEST(FlightRecorderEngineTest, RecordsEveryIterationWithBatchAndKvState) {
  const TinyTransformer model = MakeModel();
  ServingEngine engine(&model, RecorderConfig(model.config(), 128));
  for (int i = 0; i < 6; ++i) {
    engine.Submit(std::vector<int32_t>(8, 1 + i), 4, 0.0);
  }
  const ExecServingReport report = engine.Run();
  ASSERT_NE(engine.flight_recorder(), nullptr);
  EXPECT_EQ(engine.flight_recorder()->recorded(), report.iterations);

  const std::vector<obs::IterationSnapshot> snaps =
      engine.flight_recorder()->Snapshots();
  ASSERT_FALSE(snaps.empty());
  // First iteration: max_batch requests admitted, each prefilling.
  EXPECT_EQ(snaps[0].iter, 0);
  EXPECT_EQ(snaps[0].admitted, 4);
  EXPECT_EQ(snaps[0].batch, 4);
  EXPECT_EQ(snaps[0].prefill_seqs, 4);
  EXPECT_EQ(snaps[0].queue_depth, 2);
  EXPECT_EQ(snaps[0].admitted_ids, (std::vector<int64_t>{0, 1, 2, 3}));
  EXPECT_EQ(snaps[0].batch_ids, (std::vector<int64_t>{0, 1, 2, 3}));
  EXPECT_GT(snaps[0].kv_used_blocks, 0);
  EXPECT_EQ(snaps[0].kv_total_blocks, 64);
  for (size_t i = 0; i < snaps.size(); ++i) {
    EXPECT_EQ(snaps[i].iter, static_cast<int64_t>(i));
    EXPECT_GT(snaps[i].cost_ms, 0.0);
    EXPECT_GE(snaps[i].vt_s,
              i == 0 ? 0.0 : snaps[i - 1].vt_s);  // clock monotone
  }
}

void RunServingThenFailCheck() {
  const TinyTransformer model = MakeModel();
  ServingEngine engine(&model, RecorderConfig(model.config(), 32));
  for (int i = 0; i < 4; ++i) {
    engine.Submit(std::vector<int32_t>(8, 1 + i), 4, 0.0);
  }
  engine.Run();
  SPINFER_CHECK_MSG(false, "post-run invariant violated (test)");
}

TEST(FlightRecorderDeathTest, CheckFailureDumpsBatchCompositionAndKvOccupancy) {
  // The hook installed by Run must print the diagnostic, then the dump —
  // including per-iteration batch ids and KV occupancy. POSIX ERE, '.'
  // crosses newlines (no REG_NEWLINE), so one pattern asserts the order:
  // diagnostic -> dump header -> an iteration line with ids and kv counts.
  EXPECT_DEATH(
      RunServingThenFailCheck(),
      "post-run invariant violated \\(test\\).*dumping flight recorder.*"
      "\\[flight-recorder\\] .*iter=0 .*batch=4 .*kv=[0-9]+/64 blocks "
      ".*ids=\\[0,1,2,3\\]");
}

TEST(FlightRecorderEngineTest, UninstallOnDestructionIsScopedToOwnRecorder) {
  obs::FlightRecorder outer(4);
  InstallFlightRecorderCrashDump(&outer);
  {
    const TinyTransformer model = MakeModel();
    ServingEngine engine(&model, RecorderConfig(model.config(), 8));
    engine.Submit({1, 2, 3}, 2, 0.0);
    engine.Run();  // installs the engine's recorder over `outer`
  }
  // The engine's destructor must not clear a pointer it no longer owns once
  // someone else reinstalls...
  obs::FlightRecorder replacement(4);
  EXPECT_EQ(InstallFlightRecorderCrashDump(&replacement), nullptr)
      << "engine dtor should have cleared its own recorder";
  UninstallFlightRecorderCrashDump(&replacement);
}

}  // namespace
}  // namespace spinfer
