#include "src/gpusim/shared_memory.h"

#include <gtest/gtest.h>

namespace spinfer {
namespace {

TEST(SharedMemoryTest, ConflictFreeSequential4B) {
  std::vector<uint32_t> addrs;
  for (uint32_t lane = 0; lane < 32; ++lane) {
    addrs.push_back(lane * 4);
  }
  const SmemAccessResult r = SimulateSmemAccess(addrs, 4);
  EXPECT_EQ(r.transactions, 1u);
  EXPECT_EQ(r.bank_conflicts, 0u);
}

TEST(SharedMemoryTest, BroadcastIsConflictFree) {
  std::vector<uint32_t> addrs(32, 128);  // all lanes read the same word
  const SmemAccessResult r = SimulateSmemAccess(addrs, 4);
  EXPECT_EQ(r.transactions, 1u);
  EXPECT_EQ(r.bank_conflicts, 0u);
}

TEST(SharedMemoryTest, StrideTwoWordsGivesTwoWayConflict) {
  std::vector<uint32_t> addrs;
  for (uint32_t lane = 0; lane < 32; ++lane) {
    addrs.push_back(lane * 8);  // stride 2 words: banks repeat after 16 lanes
  }
  const SmemAccessResult r = SimulateSmemAccess(addrs, 4);
  EXPECT_EQ(r.transactions, 2u);
  EXPECT_EQ(r.bank_conflicts, 1u);
}

TEST(SharedMemoryTest, Stride32WordsIsWorstCase) {
  std::vector<uint32_t> addrs;
  for (uint32_t lane = 0; lane < 32; ++lane) {
    addrs.push_back(lane * 128);  // all lanes hit bank 0
  }
  const SmemAccessResult r = SimulateSmemAccess(addrs, 4);
  EXPECT_EQ(r.transactions, 32u);
  EXPECT_EQ(r.bank_conflicts, 31u);
}

TEST(SharedMemoryTest, TwoByteAccessesSharingWordsBroadcast) {
  // Lane pairs share a 4B word: 16 distinct words over 16 banks, one
  // transaction.
  std::vector<uint32_t> addrs;
  for (uint32_t lane = 0; lane < 32; ++lane) {
    addrs.push_back(lane * 2);
  }
  const SmemAccessResult r = SimulateSmemAccess(addrs, 2);
  EXPECT_EQ(r.transactions, 1u);
  EXPECT_EQ(r.bank_conflicts, 0u);
}

TEST(SharedMemoryTest, VectorizedAccessSplitsIntoPhases) {
  // 16B per lane: 32 lanes x 4 words = 128 words in 4 phases of 32; each
  // phase is sequential and conflict-free.
  std::vector<uint32_t> addrs;
  for (uint32_t lane = 0; lane < 32; ++lane) {
    addrs.push_back(lane * 16);
  }
  const SmemAccessResult r = SimulateSmemAccess(addrs, 16);
  EXPECT_EQ(r.transactions, 4u);
  EXPECT_EQ(r.bank_conflicts, 0u);
}

TEST(SharedMemoryTest, EmptyAccess) {
  const SmemAccessResult r = SimulateSmemAccess({}, 4);
  EXPECT_EQ(r.transactions, 0u);
  EXPECT_EQ(r.bank_conflicts, 0u);
}

}  // namespace
}  // namespace spinfer
