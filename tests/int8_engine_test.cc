// End-to-end behaviour of the sparsity x INT8 extension (Framework::kSpInferInt8).
#include <gtest/gtest.h>

#include "src/core/spinfer_kernel.h"
#include "src/llm/engine.h"

namespace spinfer {
namespace {

TEST(Int8KernelTest, Int8CutsModeledTimeWhenMemoryBound) {
  const DeviceSpec dev = Rtx4090();
  SpmmProblem p;
  p.m = 8192;
  p.k = 8192;
  p.n = 16;
  // Low sparsity = deeply memory-bound: the INT8 payload halving shows
  // fully. (At higher sparsity the kernel sits near its mma issue floor and
  // INT8 helps less — checked below.)
  p.sparsity = 0.3;
  SpInferKernelConfig fp16;
  SpInferKernelConfig int8;
  int8.int8_values = true;
  const double t16 = SpInferSpmmKernel(fp16).Estimate(p, dev).time.total_us;
  const double t8 = SpInferSpmmKernel(int8).Estimate(p, dev).time.total_us;
  EXPECT_LT(t8, t16 * 0.80);
  EXPECT_GT(t8, t16 * 0.40);

  // Near the compute floor (60% sparsity) the gain shrinks but never
  // reverses.
  p.sparsity = 0.6;
  const double t16_hi = SpInferSpmmKernel(fp16).Estimate(p, dev).time.total_us;
  const double t8_hi = SpInferSpmmKernel(int8).Estimate(p, dev).time.total_us;
  EXPECT_LE(t8_hi, t16_hi);
  EXPECT_GT(t8_hi, t16_hi * 0.80);
}

TEST(Int8KernelTest, NameReflectsVariant) {
  SpInferKernelConfig cfg;
  cfg.int8_values = true;
  EXPECT_EQ(SpInferSpmmKernel(cfg).name(), "spinfer-int8");
}

TEST(Int8EngineTest, WeightFormatMapping) {
  EXPECT_EQ(FrameworkWeightFormat(Framework::kSpInferInt8), WeightFormat::kTcaBmeQuant);
  EXPECT_STREQ(FrameworkName(Framework::kSpInferInt8), "SpInfer-INT8");
}

TEST(Int8EngineTest, FasterAndSmallerThanFp16SpInfer) {
  EngineConfig cfg;
  cfg.model = Opt13B();
  cfg.device = Rtx4090();
  cfg.num_gpus = 1;
  cfg.batch = 16;
  cfg.input_len = 128;
  cfg.output_len = 128;
  cfg.sparsity = 0.6;

  cfg.framework = Framework::kSpInfer;
  const InferenceReport fp16 = SimulateInference(cfg);
  cfg.framework = Framework::kSpInferInt8;
  const InferenceReport int8 = SimulateInference(cfg);
  ASSERT_FALSE(fp16.oom);
  ASSERT_FALSE(int8.oom);
  EXPECT_LT(int8.total_ms, fp16.total_ms);
  EXPECT_LT(int8.memory.weight_bytes, fp16.memory.weight_bytes);
}

TEST(Int8EngineTest, UnlocksConfigurationsFp16Cannot) {
  // OPT-30B on a single 24 GB RTX4090: FP16 TCA-BME at 60% needs ~28 GB of
  // weights; the INT8 composition (~16.5 GB) fits at small batch.
  EngineConfig cfg;
  cfg.model = Opt30B();
  cfg.device = Rtx4090();
  cfg.num_gpus = 1;
  cfg.batch = 4;
  cfg.input_len = 64;
  cfg.output_len = 64;
  cfg.sparsity = 0.6;
  cfg.framework = Framework::kSpInfer;
  EXPECT_TRUE(SimulateInference(cfg).oom);
  cfg.framework = Framework::kSpInferInt8;
  EXPECT_FALSE(SimulateInference(cfg).oom)
      << SimulateInference(cfg).memory.ToString();
}

}  // namespace
}  // namespace spinfer
