#include "src/pruning/sparsegpt.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/pruning/linalg.h"
#include "src/pruning/magnitude.h"
#include "src/pruning/nm_pruner.h"
#include "src/format/sparta_format.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

// ---- linalg ----------------------------------------------------------------

TEST(LinalgTest, CholeskyOfKnownMatrix) {
  // A = [[4,2],[2,3]] -> L = [[2,0],[1,sqrt(2)]].
  SquareMatrix a(2);
  a.at(0, 0) = 4;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 3;
  ASSERT_TRUE(CholeskyFactor(&a));
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 1.0);
  EXPECT_NEAR(a.at(1, 1), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 0.0);
}

TEST(LinalgTest, CholeskyRejectsIndefinite) {
  SquareMatrix a(2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 1;  // eigenvalues 3, -1
  EXPECT_FALSE(CholeskyFactor(&a));
}

TEST(LinalgTest, SpdInverseIsInverse) {
  Rng rng(201);
  const int64_t n = 24;
  // Random SPD: A = B B^T + n*I.
  SquareMatrix b(n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      b.at(i, j) = rng.Gaussian();
    }
  }
  SquareMatrix a(n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double v = (i == j) ? static_cast<double>(n) : 0.0;
      for (int64_t k = 0; k < n; ++k) {
        v += b.at(i, k) * b.at(j, k);
      }
      a.at(i, j) = v;
    }
  }
  SquareMatrix inv(n);
  ASSERT_TRUE(SpdInverse(a, &inv));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double v = 0.0;
      for (int64_t k = 0; k < n; ++k) {
        v += a.at(i, k) * inv.at(k, j);
      }
      EXPECT_NEAR(v, i == j ? 1.0 : 0.0, 1e-9) << i << "," << j;
    }
  }
}

// ---- SparseGPT --------------------------------------------------------------

std::vector<float> MakeCalibration(int64_t samples, int64_t features, Rng& rng) {
  std::vector<float> x(static_cast<size_t>(samples * features));
  for (auto& v : x) {
    v = static_cast<float>(rng.Gaussian());
  }
  return x;
}

TEST(SparseGptTest, HitsTargetSparsityPerRow) {
  Rng rng(202);
  const int64_t k = 64;
  const SparseGptPruner pruner(MakeCalibration(32, k, rng), 32, k);
  const HalfMatrix w = HalfMatrix::Random(8, k, rng, 0.1f);
  const HalfMatrix pruned = pruner.Prune(w, 0.5);
  for (int64_t r = 0; r < 8; ++r) {
    int64_t nnz = 0;
    for (int64_t c = 0; c < k; ++c) {
      nnz += !pruned.at(r, c).IsZero();
    }
    EXPECT_EQ(nnz, k / 2) << "row " << r;
  }
}

// The whole point of OBS compensation: lower output reconstruction error
// than magnitude pruning at the same sparsity, measured on the calibration
// distribution.
TEST(SparseGptTest, CompensationBeatsMagnitudeOnOutputError) {
  Rng rng(203);
  const int64_t k = 64;
  const int64_t samples = 128;
  const auto calib = MakeCalibration(samples, k, rng);
  const SparseGptPruner sgpt(calib, samples, k);
  const HalfMatrix w = HalfMatrix::Random(16, k, rng, 0.1f);

  auto recon_error = [&](const HalfMatrix& pruned) {
    // || (W - Wp) X ||^2 over the calibration set.
    double err = 0.0;
    for (int64_t s = 0; s < samples; ++s) {
      for (int64_t r = 0; r < w.rows(); ++r) {
        double d = 0.0;
        for (int64_t c = 0; c < k; ++c) {
          d += (w.at(r, c).ToFloat() - pruned.at(r, c).ToFloat()) *
               calib[s * k + c];
        }
        err += d * d;
      }
    }
    return err;
  };

  const double sgpt_err = recon_error(sgpt.Prune(w, 0.5));
  const double mag_err = recon_error(MagnitudePruner().Prune(w, 0.5));
  EXPECT_LT(sgpt_err, mag_err);
}

TEST(SparseGptTest, ZeroSparsityKeepsWeightsIntact) {
  Rng rng(204);
  const int64_t k = 32;
  const SparseGptPruner pruner(MakeCalibration(16, k, rng), 16, k);
  const HalfMatrix w = HalfMatrix::Random(4, k, rng, 0.1f);
  const HalfMatrix pruned = pruner.Prune(w, 0.0);
  for (int64_t i = 0; i < w.size(); ++i) {
    // No pruning -> no compensation -> identical bits.
    EXPECT_EQ(pruned.data()[i].bits(), w.data()[i].bits());
  }
}

// ---- N:M --------------------------------------------------------------------

TEST(NmPrunerTest, TwoFourPattern) {
  Rng rng(205);
  const HalfMatrix w = HalfMatrix::Random(8, 64, rng);
  const NmPruner pruner(2, 4);
  EXPECT_EQ(pruner.name(), "2:4");
  EXPECT_DOUBLE_EQ(pruner.PatternSparsity(), 0.5);
  const HalfMatrix pruned = pruner.Prune(w, 0.0);
  for (int64_t r = 0; r < 8; ++r) {
    for (int64_t g = 0; g < 16; ++g) {
      int nnz = 0;
      for (int i = 0; i < 4; ++i) {
        nnz += !pruned.at(r, g * 4 + i).IsZero();
      }
      EXPECT_LE(nnz, 2);
    }
  }
  EXPECT_NEAR(pruned.Sparsity(), 0.5, 1e-9);
}

TEST(NmPrunerTest, KeepsLargestInGroup) {
  HalfMatrix w(1, 4);
  w.at(0, 0) = Half(0.1f);
  w.at(0, 1) = Half(-5.0f);
  w.at(0, 2) = Half(0.2f);
  w.at(0, 3) = Half(3.0f);
  const HalfMatrix pruned = NmPruner(2, 4).Prune(w, 0.0);
  EXPECT_TRUE(pruned.at(0, 0).IsZero());
  EXPECT_FALSE(pruned.at(0, 1).IsZero());
  EXPECT_TRUE(pruned.at(0, 2).IsZero());
  EXPECT_FALSE(pruned.at(0, 3).IsZero());
}

// An N:M-pruned matrix fits entirely in SparTA's structured component.
TEST(NmPrunerTest, TwoFourOutputHasEmptySpartaResidual) {
  Rng rng(206);
  const HalfMatrix w = HalfMatrix::Random(32, 64, rng);
  const HalfMatrix pruned = NmPruner(2, 4).Prune(w, 0.0);
  const SpartaMatrix enc = SpartaMatrix::Encode(pruned);
  EXPECT_EQ(enc.residual_nnz(), 0);
}

TEST(NmPrunerTest, RaggedTailGroups) {
  Rng rng(207);
  const HalfMatrix w = HalfMatrix::Random(4, 10, rng);  // 10 = 2 groups + tail of 2
  const HalfMatrix pruned = NmPruner(1, 4).Prune(w, 0.0);
  for (int64_t r = 0; r < 4; ++r) {
    int nnz_tail = 0;
    for (int64_t c = 8; c < 10; ++c) {
      nnz_tail += !pruned.at(r, c).IsZero();
    }
    EXPECT_LE(nnz_tail, 1);
  }
}

}  // namespace
}  // namespace spinfer
