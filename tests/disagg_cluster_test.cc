// Differential and edge tests for the executing disaggregated cluster.
//
// The load-bearing claims, each enforced here:
//   * On the lockstep domain (uniform shapes, simultaneous arrivals, an idle
//     prefill pool, one decode instance) the executing cluster reproduces
//     the analytic PlanDisaggregation report to <= 1e-9 relative: TTFT
//     (prefill + KV transfer), steady-state tpot at the planner's
//     mid-context, and decode throughput at the feasible batch.
//   * Execution is real: every request's token stream equals full-recompute
//     Generate bitwise, across the prefill -> migrate -> decode pipeline.
//   * Reports are byte-stable across reruns and thread counts.
//   * Degenerate topologies (no prefill pool, no decode pool) and unservable
//     requests reject gracefully — no UB, no CHECK crash.
#include "src/llm/disagg_cluster.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/gpusim/device_spec.h"
#include "src/llm/disaggregation.h"
#include "src/llm/tiny_transformer.h"
#include "src/pruning/magnitude.h"
#include "src/util/random.h"
#include "src/util/thread_pool.h"

namespace spinfer {
namespace {

constexpr int64_t kInputLen = 16;
constexpr int64_t kOutputLen = 8;
constexpr int64_t kBatch = 8;

TinyTransformer MakePrunedModel(uint64_t seed = 7) {
  TinyTransformer model(TinyConfig{}, seed);
  model.PruneWeights(MagnitudePruner(), 0.6);
  return model;
}

// The analytic plan whose numbers the executing cluster must reproduce.
DisaggConfig PlanConfig() {
  DisaggConfig cfg;
  cfg.model = Opt13B();
  cfg.framework = Framework::kSpInfer;
  cfg.sparsity = 0.6;
  cfg.prefill_device = Rtx4090();
  cfg.prefill_gpus = 1;
  cfg.decode_device = Rtx4090();
  cfg.decode_gpus = 1;
  cfg.request_rate_rps = 1.0;
  cfg.input_len = kInputLen;
  cfg.output_len = kOutputLen;
  cfg.max_decode_batch = kBatch;
  cfg.transfer_bw_gbs = 25.0;
  return cfg;
}

DisaggClusterConfig ClusterConfig() {
  const DisaggConfig plan = PlanConfig();
  DisaggClusterConfig cfg;
  // One idle prefill instance per request: all arrivals at t=0 prefill in
  // parallel, finish together, and get batch-admitted to decode in lockstep.
  cfg.prefill_instances = kBatch;
  cfg.decode_instances = 1;
  cfg.max_decode_batch = kBatch;
  cfg.kv_block_tokens = 8;
  cfg.kv_num_blocks = 64;
  cfg.prefill_cost.model = plan.model;
  cfg.prefill_cost.framework = plan.framework;
  cfg.prefill_cost.device = plan.prefill_device;
  cfg.prefill_cost.num_gpus = plan.prefill_gpus;
  cfg.prefill_cost.sparsity = plan.sparsity;
  cfg.decode_cost = cfg.prefill_cost;
  cfg.decode_cost.device = plan.decode_device;
  cfg.decode_cost.num_gpus = plan.decode_gpus;
  cfg.transfer_bw_gbs = plan.transfer_bw_gbs;
  return cfg;
}

std::vector<int32_t> RandomPrompt(Rng& rng, int64_t len, int64_t vocab) {
  std::vector<int32_t> p(static_cast<size_t>(len));
  for (int32_t& t : p) {
    t = static_cast<int32_t>(rng.Below(static_cast<uint64_t>(vocab)));
  }
  return p;
}

std::vector<std::vector<int32_t>> LockstepPrompts(const TinyTransformer& model) {
  Rng rng(23);
  std::vector<std::vector<int32_t>> prompts;
  for (int64_t i = 0; i < kBatch; ++i) {
    prompts.push_back(RandomPrompt(rng, kInputLen, model.config().vocab));
  }
  return prompts;
}

// The tentpole cross-check: executing TTFT, steady-state tpot, and decode
// throughput reproduce PlanDisaggregation to <= 1e-9 relative on the
// lockstep domain.
TEST(DisaggClusterTest, MatchesAnalyticPlannerOnLockstepDomain) {
  const TinyTransformer model = MakePrunedModel();
  const DisaggReport plan = PlanDisaggregation(PlanConfig());
  ASSERT_TRUE(plan.prefill_fits);
  ASSERT_TRUE(plan.decode_fits);
  // The comparison needs the executing batch to BE the planner's feasible
  // batch; the tiny pools and the scheduler cap both sit at kBatch.
  ASSERT_EQ(plan.decode_batch, kBatch);

  ThreadPool::SetGlobalThreads(1);
  DisaggCluster cluster(&model, ClusterConfig());
  for (const auto& p : LockstepPrompts(model)) {
    cluster.Submit(p, kOutputLen, /*arrival_s=*/0.0);
  }
  const DisaggClusterReport report = cluster.Run();
  ThreadPool::SetGlobalThreads(0);

  EXPECT_EQ(report.arrived, kBatch);
  EXPECT_EQ(report.completed, kBatch);
  EXPECT_EQ(report.rejected, 0);
  EXPECT_EQ(report.prefills, kBatch);
  EXPECT_EQ(report.migrations, kBatch);
  EXPECT_EQ(report.peak_decode_batch, kBatch);

  const double kRel = 1e-9;
  // TTFT: with an idle prefill instance per request, queueing is zero and
  // the executing TTFT is exactly prefill_ms + kv_transfer_ms.
  for (const RequestRecord& r : cluster.results()) {
    EXPECT_NEAR(r.ttft_ms, plan.ttft_ms, kRel * plan.ttft_ms) << "id=" << r.id;
  }
  EXPECT_NEAR(report.ttft.mean_ms, plan.ttft_ms, kRel * plan.ttft_ms);

  // Steady state: the decode iteration whose mean context equals the
  // planner's mid-context (input + output/2) must price exactly the
  // planner's tpot, and its throughput is the planner's tokens/s.
  const int64_t mid_context = kInputLen + kOutputLen / 2;
  bool found = false;
  for (const DisaggIterationSample& s : cluster.decode_samples(0)) {
    EXPECT_EQ(s.batch, kBatch);  // lockstep: full batch every iteration
    if (s.mean_context == mid_context) {
      found = true;
      EXPECT_NEAR(s.cost_us / 1e3, plan.tpot_ms, kRel * plan.tpot_ms);
      const double tokens_per_s =
          static_cast<double>(s.batch) * 1e6 / s.cost_us;
      EXPECT_NEAR(tokens_per_s, plan.decode_tokens_per_s,
                  kRel * plan.decode_tokens_per_s);
    }
  }
  EXPECT_TRUE(found) << "no decode iteration hit the planner's mid-context "
                     << mid_context;
}

// Execution through the prefill -> migrate -> decode pipeline is real: every
// request's stream equals full-recompute Generate bitwise (the KV handoff
// moved the exact cached bits).
TEST(DisaggClusterTest, TokenStreamsMatchGenerateAcrossMigration) {
  const TinyTransformer model = MakePrunedModel();
  const auto prompts = LockstepPrompts(model);

  ThreadPool::SetGlobalThreads(1);
  DisaggCluster cluster(&model, ClusterConfig());
  for (const auto& p : prompts) {
    cluster.Submit(p, kOutputLen, 0.0);
  }
  cluster.Run();
  ThreadPool::SetGlobalThreads(0);

  for (size_t i = 0; i < prompts.size(); ++i) {
    const std::vector<int32_t> full = model.Generate(
        prompts[i], static_cast<int>(kOutputLen), MatmulBackend::kTcaBmeCpu);
    const std::vector<int32_t> tail(full.begin() + prompts[i].size(),
                                    full.end());
    EXPECT_EQ(cluster.results()[i].generated, tail) << "id=" << i;
  }
}

// Byte-identical reports and trajectories for a fixed workload, across
// reruns and thread counts.
TEST(DisaggClusterTest, ReportByteStableAcrossRerunsAndThreads) {
  const TinyTransformer model = MakePrunedModel();
  const auto prompts = LockstepPrompts(model);
  auto run = [&]() {
    DisaggCluster cluster(&model, ClusterConfig());
    for (size_t i = 0; i < prompts.size(); ++i) {
      // Staggered arrivals exercise the queueing paths too.
      cluster.Submit(prompts[i], kOutputLen, 0.001 * static_cast<double>(i));
    }
    const DisaggClusterReport report = cluster.Run();
    return std::make_pair(report.ToString(), cluster.results());
  };

  ThreadPool::SetGlobalThreads(1);
  const auto baseline = run();

  for (int threads : {1, 2, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    const auto other = run();
    EXPECT_EQ(other.first, baseline.first) << "threads=" << threads;
    ASSERT_EQ(other.second.size(), baseline.second.size());
    for (size_t i = 0; i < baseline.second.size(); ++i) {
      EXPECT_EQ(other.second[i].generated, baseline.second[i].generated)
          << "threads=" << threads << " id=" << i;
      EXPECT_DOUBLE_EQ(other.second[i].ttft_ms, baseline.second[i].ttft_ms);
      EXPECT_DOUBLE_EQ(other.second[i].latency_ms,
                       baseline.second[i].latency_ms);
    }
  }
  ThreadPool::SetGlobalThreads(0);
}

// A topology with an empty pool on either side rejects every request
// gracefully instead of crashing or hanging.
TEST(DisaggClusterTest, EmptyPoolsRejectGracefully) {
  const TinyTransformer model = MakePrunedModel();
  Rng rng(5);
  for (const bool empty_prefill : {true, false}) {
    DisaggClusterConfig cfg = ClusterConfig();
    (empty_prefill ? cfg.prefill_instances : cfg.decode_instances) = 0;
    DisaggCluster cluster(&model, cfg);
    cluster.Submit(RandomPrompt(rng, 8, model.config().vocab), 4);
    cluster.Submit(RandomPrompt(rng, 8, model.config().vocab), 4);
    const DisaggClusterReport report = cluster.Run();
    EXPECT_EQ(report.arrived, 2);
    EXPECT_EQ(report.rejected, 2);
    EXPECT_EQ(report.completed, 0);
    EXPECT_EQ(report.migrations, 0);
    for (const RequestRecord& r : cluster.results()) {
      EXPECT_EQ(r.reason, FinishReason::kRejected);
    }
  }
}

// Unservable requests — empty prompts, context-window overflows, prompts no
// pool could ever hold — reject while servable neighbors still complete.
TEST(DisaggClusterTest, UnservableRequestsRejectServableOnesComplete) {
  const TinyTransformer model = MakePrunedModel();
  Rng rng(9);
  DisaggClusterConfig cfg = ClusterConfig();
  DisaggCluster cluster(&model, cfg);

  const int64_t ok = cluster.Submit(RandomPrompt(rng, 8, 256), 4);
  const int64_t empty = cluster.Submit({}, 4);
  // 60 + 8 > max_seq 64: overflows the context window.
  const int64_t overflow = cluster.Submit(RandomPrompt(rng, 60, 256), 8);
  const int64_t zero_budget = cluster.Submit(RandomPrompt(rng, 8, 256), 0);

  const DisaggClusterReport report = cluster.Run();
  EXPECT_EQ(report.arrived, 4);
  EXPECT_EQ(report.completed, 1);
  EXPECT_EQ(report.rejected, 3);
  EXPECT_EQ(cluster.results()[static_cast<size_t>(ok)].reason,
            FinishReason::kMaxTokens);
  for (const int64_t id : {empty, overflow, zero_budget}) {
    EXPECT_EQ(cluster.results()[static_cast<size_t>(id)].reason,
              FinishReason::kRejected);
  }
}

// A max_new_tokens of 1 is satisfied by the prefill token alone: the request
// completes at transfer time without ever touching the decode pool.
TEST(DisaggClusterTest, SingleTokenBudgetSkipsDecode) {
  const TinyTransformer model = MakePrunedModel();
  Rng rng(17);
  DisaggCluster cluster(&model, ClusterConfig());
  cluster.Submit(RandomPrompt(rng, 8, 256), 1);
  const DisaggClusterReport report = cluster.Run();
  EXPECT_EQ(report.completed, 1);
  EXPECT_EQ(report.migrations, 0);
  EXPECT_EQ(report.decode_iterations, 0);
  const RequestRecord& r = cluster.results()[0];
  EXPECT_EQ(static_cast<int64_t>(r.generated.size()), 1);
  EXPECT_DOUBLE_EQ(r.ttft_ms, r.latency_ms);
}

}  // namespace
}  // namespace spinfer
