#include "src/format/csr.h"

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace spinfer {
namespace {

bool MatricesEqual(const HalfMatrix& a, const HalfMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return false;
  }
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      if (!(a.at(r, c) == b.at(r, c))) {
        return false;
      }
    }
  }
  return true;
}

class CsrRoundtripTest : public ::testing::TestWithParam<double> {};

TEST_P(CsrRoundtripTest, EncodeDecodeRoundtrips) {
  Rng rng(31);
  const HalfMatrix w = HalfMatrix::RandomSparse(96, 80, GetParam(), rng);
  const CsrMatrix enc = CsrMatrix::Encode(w);
  EXPECT_EQ(enc.nnz(), w.CountNonZeros());
  EXPECT_TRUE(MatricesEqual(enc.Decode(), w));
}

INSTANTIATE_TEST_SUITE_P(Sparsities, CsrRoundtripTest,
                         ::testing::Values(0.0, 0.3, 0.5, 0.7, 0.9, 1.0));

TEST(CsrTest, StorageMatchesEq3) {
  Rng rng(32);
  const HalfMatrix w = HalfMatrix::RandomSparse(64, 64, 0.5, rng);
  const CsrMatrix enc = CsrMatrix::Encode(w);
  // (2B + 4B) * NNZ + 4B * (M + 1).
  EXPECT_EQ(enc.StorageBytes(), 6ull * enc.nnz() + 4ull * (64 + 1));
}

TEST(CsrTest, EmptyMatrix) {
  HalfMatrix w(4, 4);
  const CsrMatrix enc = CsrMatrix::Encode(w);
  EXPECT_EQ(enc.nnz(), 0);
  EXPECT_TRUE(MatricesEqual(enc.Decode(), w));
}

TEST(CsrTest, RowPtrMonotone) {
  Rng rng(33);
  const HalfMatrix w = HalfMatrix::RandomSparse(50, 30, 0.6, rng);
  const CsrMatrix enc = CsrMatrix::Encode(w);
  for (size_t i = 1; i < enc.row_ptr().size(); ++i) {
    EXPECT_LE(enc.row_ptr()[i - 1], enc.row_ptr()[i]);
  }
  EXPECT_EQ(enc.row_ptr().back(), enc.nnz());
}

}  // namespace
}  // namespace spinfer
