// Differential tests for the tensor-parallel ShardedEngine substrate.
//
// The load-bearing claims, each enforced here:
//   * Output-row partitioning with copy-gather collectives makes the sharded
//     engine bit-identical to the single-instance engine — token streams,
//     per-request trajectories, and the byte-rendered report all match for
//     shards in {1, 2, 4}, ragged Poisson traffic, GQA configs, and every
//     thread count. The sharded serving path therefore also reproduces
//     full-recompute Generate bitwise (by composition with the
//     single-instance equivalence).
//   * The virtual interconnect reproduces the analytic tensor-parallel comm
//     model expression for expression: comm_us() equals the sum over
//     executed steps of layers * LayerCommTimeUs(panel, hidden, shards, dev),
//     exactly (EXPECT_DOUBLE_EQ), and one shard prices zero comm.
//   * Per-shard KV pools run in lockstep: block tables and accounting agree
//     with the single-instance pool throughout (shard 0 IS the scheduler's
//     accounting view).
#include "src/llm/sharded_engine.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/gpusim/device_spec.h"
#include "src/llm/parallel.h"
#include "src/llm/serving_engine.h"
#include "src/llm/tiny_transformer.h"
#include "src/pruning/magnitude.h"
#include "src/util/random.h"
#include "src/util/thread_pool.h"

namespace spinfer {
namespace {

TinyConfig TestModelConfig() {
  TinyConfig cfg;  // vocab 256, hidden 64, layers 2, heads 4, ffn 256, seq 64
  return cfg;
}

TinyConfig GqaModelConfig() {
  TinyConfig cfg;
  cfg.kv_heads = 2;  // grouped-query: 4 query heads share 2 kv heads
  return cfg;
}

TinyTransformer MakePrunedModel(const TinyConfig& cfg, uint64_t seed = 7) {
  TinyTransformer model(cfg, seed);
  model.PruneWeights(MagnitudePruner(), 0.6);
  return model;
}

ServingEngineConfig TestEngineConfig(const TinyConfig& model_cfg) {
  ServingEngineConfig cfg;
  cfg.max_batch = 4;
  cfg.kv_block_tokens = 8;
  cfg.kv_num_blocks = 32;
  cfg.cost.model = ModelConfigFor(model_cfg);
  cfg.cost.framework = Framework::kSpInfer;
  cfg.cost.device = Rtx4090();
  cfg.cost.sparsity = 0.6;
  return cfg;
}

ShardedEngineConfig TestShardConfig(int shards) {
  ShardedEngineConfig cfg;
  cfg.shards = shards;
  cfg.kv_block_tokens = 8;   // must mirror TestEngineConfig's pool geometry
  cfg.kv_num_blocks = 32;
  cfg.device = Rtx4090();
  return cfg;
}

PoissonTraffic RaggedTraffic(uint64_t seed) {
  PoissonTraffic t;
  t.arrival_rate_rps = 40.0;
  t.horizon_s = 1.0;
  t.seed = seed;
  t.prompt_len_min = 4;
  t.prompt_len_max = 12;
  t.max_new_min = 4;
  t.max_new_max = 10;
  return t;
}

struct RunResult {
  std::string report;
  std::vector<RequestRecord> records;
};

RunResult RunSingleInstance(const TinyTransformer& model,
                            const ServingEngineConfig& cfg, uint64_t seed) {
  ServingEngine engine(&model, cfg);
  engine.InjectPoissonArrivals(RaggedTraffic(seed));
  const ExecServingReport report = engine.Run();
  return RunResult{report.ToString(), engine.results()};
}

// One serving run over a caller-owned sharded substrate (fresh per run: the
// scheduler is single-shot and reuses sequence ids).
RunResult RunSharded(ShardedEngine* substrate, const ServingEngineConfig& cfg,
                     uint64_t seed) {
  ServingEngine engine(substrate, cfg);
  engine.InjectPoissonArrivals(RaggedTraffic(seed));
  const ExecServingReport report = engine.Run();
  return RunResult{report.ToString(), engine.results()};
}

void ExpectSameRun(const RunResult& a, const RunResult& b,
                   const std::string& label) {
  EXPECT_EQ(a.report, b.report) << label;
  ASSERT_EQ(a.records.size(), b.records.size()) << label;
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].generated, b.records[i].generated)
        << label << " id=" << i;
    EXPECT_EQ(a.records[i].reason, b.records[i].reason) << label << " id=" << i;
    EXPECT_DOUBLE_EQ(a.records[i].latency_ms, b.records[i].latency_ms)
        << label << " id=" << i;
    EXPECT_DOUBLE_EQ(a.records[i].ttft_ms, b.records[i].ttft_ms)
        << label << " id=" << i;
  }
}

// The tentpole differential: for shards in {1, 2, 4}, the sharded substrate
// under the same scheduler reproduces the single-instance engine byte for
// byte — token streams, trajectories, and the rendered report.
TEST(ShardedEngineTest, BitIdenticalToSingleInstanceAtAnyShardCount) {
  const TinyTransformer model = MakePrunedModel(TestModelConfig());
  const ServingEngineConfig cfg = TestEngineConfig(model.config());

  ThreadPool::SetGlobalThreads(1);
  const RunResult baseline = RunSingleInstance(model, cfg, 42);
  EXPECT_GT(baseline.records.size(), 10u);

  for (int shards : {1, 2, 4}) {
    ShardedEngine substrate(&model, TestShardConfig(shards));
    const RunResult sharded = RunSharded(&substrate, cfg, 42);
    ExpectSameRun(baseline, sharded, "shards=" + std::to_string(shards));
  }
  ThreadPool::SetGlobalThreads(0);
}

// Same equivalence under grouped-query attention: kv groups shard cleanly
// (kv_heads % shards == 0), so per-shard caches hold exactly their own kv
// heads' rows.
TEST(ShardedEngineTest, BitIdenticalToSingleInstanceUnderGqa) {
  const TinyTransformer model = MakePrunedModel(GqaModelConfig());
  const ServingEngineConfig cfg = TestEngineConfig(model.config());

  ThreadPool::SetGlobalThreads(1);
  const RunResult baseline = RunSingleInstance(model, cfg, 57);
  EXPECT_GT(baseline.records.size(), 10u);
  ShardedEngine substrate(&model, TestShardConfig(2));
  const RunResult sharded = RunSharded(&substrate, cfg, 57);
  ExpectSameRun(baseline, sharded, "gqa shards=2");
  ThreadPool::SetGlobalThreads(0);
}

// GQA single-instance serving reproduces full-recompute Generate — the
// grouped-kv read indexing in both Forward and the paged decode agree.
TEST(ShardedEngineTest, GqaServingMatchesGenerate) {
  const TinyTransformer model = MakePrunedModel(GqaModelConfig());
  Rng rng(13);
  std::vector<int32_t> prompt(9);
  for (int32_t& t : prompt) {
    t = static_cast<int32_t>(rng.Below(256));
  }
  const int kSteps = 8;
  const std::vector<int32_t> full =
      model.Generate(prompt, kSteps, MatmulBackend::kTcaBmeCpu);

  PagedKvCache cache(model.KvCacheConfig(8, 32));
  ASSERT_TRUE(cache.AddSequence(0, static_cast<int64_t>(prompt.size())));
  const FloatMatrix logits =
      model.Prefill(prompt, MatmulBackend::kTcaBmeCpu, &cache, 0);
  std::vector<int32_t> stream = {GreedyToken(logits, logits.rows() - 1)};
  std::vector<int32_t> next;
  for (int s = 1; s < kSteps; ++s) {
    model.DecodeStep({0}, {stream.back()}, MatmulBackend::kTcaBmeCpu, &cache,
                     &next);
    stream.push_back(next[0]);
  }
  const std::vector<int32_t> tail(full.begin() + prompt.size(), full.end());
  EXPECT_EQ(stream, tail);
}

// Sharded reports and token streams are byte-stable across thread counts —
// the kernels' thread-count determinism composed across every shard.
TEST(ShardedEngineTest, ByteStableAcrossThreadCounts) {
  const TinyTransformer model = MakePrunedModel(TestModelConfig());
  const ServingEngineConfig cfg = TestEngineConfig(model.config());

  ThreadPool::SetGlobalThreads(1);
  ShardedEngine base_sub(&model, TestShardConfig(2));
  const RunResult baseline = RunSharded(&base_sub, cfg, 42);
  const std::string base_stats = base_sub.StatsToString();
  EXPECT_GT(baseline.records.size(), 10u);

  for (int threads : {1, 2, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    ShardedEngine sub(&model, TestShardConfig(2));
    const RunResult other = RunSharded(&sub, cfg, 42);
    ExpectSameRun(baseline, other, "threads=" + std::to_string(threads));
    EXPECT_EQ(sub.StatsToString(), base_stats) << "threads=" << threads;
  }
  ThreadPool::SetGlobalThreads(0);
}

// The virtual interconnect is the analytic model, expression for expression:
// comm_us() equals layers * LayerCommTimeUs(panel, hidden, shards, device)
// summed over the executed steps in order — to the last bit — and a single
// shard prices zero communication.
TEST(ShardedEngineTest, CommMatchesAnalyticLayerCommExactly) {
  const TinyTransformer model = MakePrunedModel(TestModelConfig());
  const ServingEngineConfig cfg = TestEngineConfig(model.config());
  ThreadPool::SetGlobalThreads(1);

  for (int shards : {1, 2, 4}) {
    ShardedEngine sub(&model, TestShardConfig(shards));
    RunSharded(&sub, cfg, 42);
    ASSERT_GT(sub.steps(), 0);
    ASSERT_EQ(static_cast<int64_t>(sub.step_panel_cols().size()), sub.steps());
    double expected = 0.0;
    const int64_t layers = model.config().layers;
    for (const int64_t n : sub.step_panel_cols()) {
      for (int64_t l = 0; l < layers; ++l) {
        expected +=
            LayerCommTimeUs(n, model.config().hidden, shards, Rtx4090());
      }
    }
    EXPECT_DOUBLE_EQ(sub.comm_us(), expected) << "shards=" << shards;
    if (shards == 1) {
      EXPECT_EQ(sub.comm_us(), 0.0);
    } else {
      EXPECT_GT(sub.comm_us(), 0.0);
    }
  }
  ThreadPool::SetGlobalThreads(0);
}

// Lockstep KV discipline: after a full serving run every shard's pool has
// drained to empty — identical allocator trajectories end identically.
TEST(ShardedEngineTest, ShardPoolsDrainInLockstep) {
  const TinyTransformer model = MakePrunedModel(TestModelConfig());
  const ServingEngineConfig cfg = TestEngineConfig(model.config());
  ThreadPool::SetGlobalThreads(1);
  ShardedEngine substrate(&model, TestShardConfig(2));
  {
    ServingEngine engine(&substrate, cfg);
    engine.InjectPoissonArrivals(RaggedTraffic(42));
    const ExecServingReport report = engine.Run();
    EXPECT_GT(report.completed, 10);
  }
  EXPECT_EQ(substrate.cache().used_blocks(), 0);
  EXPECT_EQ(substrate.cache().WastedTokenSlots(), 0);
  ThreadPool::SetGlobalThreads(0);
}

}  // namespace
}  // namespace spinfer
