// Deterministic fuzzing of the TCBM/bundle deserializers: every corruption —
// truncation at any prefix length, bit flips anywhere in the container,
// patched version/magic fields — must be rejected with a non-empty diagnostic
// and never crash or return a matrix. Complements serialize_test.cc, which
// covers the happy paths.
#include "src/format/serialize.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/util/crc32.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

TcaBmeMatrix MakeEncoded(int64_t rows, int64_t cols, double sparsity, uint64_t seed) {
  Rng rng(seed);
  return TcaBmeMatrix::Encode(HalfMatrix::RandomSparse(rows, cols, sparsity, rng));
}

// Re-stamps the trailing CRC so header patches survive the CRC gate and
// reach the field validation under test.
void FixCrc(std::vector<uint8_t>* bytes) {
  const size_t payload = bytes->size() - sizeof(uint32_t);
  const uint32_t crc = Crc32(bytes->data(), payload);
  std::memcpy(bytes->data() + payload, &crc, sizeof(crc));
}

TEST(SerializeFuzzTest, RoundTripBitIdentical) {
  const TcaBmeMatrix m = MakeEncoded(130, 100, 0.6, 41);
  const std::vector<uint8_t> bytes = SerializeTcaBme(m);
  std::string error;
  const auto back = DeserializeTcaBme(bytes, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->rows(), m.rows());
  EXPECT_EQ(back->cols(), m.cols());
  EXPECT_EQ(back->nnz(), m.nnz());
  EXPECT_EQ(back->gtile_offsets(), m.gtile_offsets());
  EXPECT_EQ(back->bitmaps(), m.bitmaps());
  ASSERT_EQ(back->values().size(), m.values().size());
  for (size_t i = 0; i < m.values().size(); ++i) {
    ASSERT_EQ(back->values()[i].bits(), m.values()[i].bits()) << "value " << i;
  }
  // Serialization itself is canonical: same matrix, same bytes.
  EXPECT_EQ(SerializeTcaBme(*back), bytes);
}

TEST(SerializeFuzzTest, EveryTruncationRejected) {
  const std::vector<uint8_t> bytes = SerializeTcaBme(MakeEncoded(64, 64, 0.5, 42));
  for (size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + len);
    std::string error;
    const auto m = DeserializeTcaBme(prefix, &error);
    EXPECT_FALSE(m.has_value()) << "accepted a " << len << "-byte prefix";
    EXPECT_FALSE(error.empty()) << "no diagnostic for a " << len << "-byte prefix";
  }
}

TEST(SerializeFuzzTest, EveryBitFlipRejectedOrEquivalent) {
  // Any single-bit flip breaks the CRC, so deserialization must fail — and
  // must fail cleanly even though the flipped field may encode an absurd
  // array length or geometry.
  const std::vector<uint8_t> bytes = SerializeTcaBme(MakeEncoded(64, 64, 0.5, 43));
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; bit += 3) {  // every 3rd bit keeps runtime low
      std::vector<uint8_t> corrupt = bytes;
      corrupt[byte] ^= static_cast<uint8_t>(1u << bit);
      std::string error;
      const auto m = DeserializeTcaBme(corrupt, &error);
      EXPECT_FALSE(m.has_value()) << "byte " << byte << " bit " << bit;
      EXPECT_FALSE(error.empty()) << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(SerializeFuzzTest, WrongVersionNamesBothVersions) {
  std::vector<uint8_t> bytes = SerializeTcaBme(MakeEncoded(64, 64, 0.5, 44));
  // Version is the u32 after the magic; patch it and re-stamp the CRC so the
  // version check itself is what fires.
  const uint32_t bogus = 7;
  std::memcpy(bytes.data() + sizeof(uint32_t), &bogus, sizeof(bogus));
  FixCrc(&bytes);
  std::string error;
  EXPECT_FALSE(DeserializeTcaBme(bytes, &error).has_value());
  EXPECT_NE(error.find("version 7"), std::string::npos) << error;
  EXPECT_NE(error.find("version 1"), std::string::npos) << error;
}

TEST(SerializeFuzzTest, WrongMagicNamesExpected) {
  std::vector<uint8_t> bytes = SerializeTcaBme(MakeEncoded(64, 64, 0.5, 45));
  const uint32_t bogus = 0xdeadbeefu;
  std::memcpy(bytes.data(), &bogus, sizeof(bogus));
  FixCrc(&bytes);
  std::string error;
  EXPECT_FALSE(DeserializeTcaBme(bytes, &error).has_value());
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
  EXPECT_NE(error.find("SPBM"), std::string::npos) << error;
}

TEST(SerializeFuzzTest, CrcMismatchDiagnosed) {
  std::vector<uint8_t> bytes = SerializeTcaBme(MakeEncoded(64, 64, 0.5, 46));
  bytes.back() ^= 0xff;  // corrupt the stored CRC itself
  std::string error;
  EXPECT_FALSE(DeserializeTcaBme(bytes, &error).has_value());
  EXPECT_NE(error.find("CRC"), std::string::npos) << error;
}

TEST(SerializeFuzzTest, BundleRoundTripAndCorruptions) {
  WeightBundle bundle;
  bundle.Add("layers.0.fc1", MakeEncoded(64, 128, 0.5, 47));
  bundle.Add("layers.0.fc2", MakeEncoded(128, 64, 0.7, 48));
  const std::vector<uint8_t> bytes = bundle.Serialize();

  std::string error;
  const auto back = WeightBundle::Deserialize(bytes, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->size(), 2u);
  ASSERT_NE(back->Find("layers.0.fc1"), nullptr);
  EXPECT_EQ(back->Find("layers.0.fc1")->nnz(), bundle.Find("layers.0.fc1")->nnz());

  // Truncations: sample every 7th prefix to bound runtime on the larger blob.
  for (size_t len = 0; len < bytes.size(); len += 7) {
    const std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + len);
    std::string e;
    EXPECT_FALSE(WeightBundle::Deserialize(prefix, &e).has_value()) << len;
    EXPECT_FALSE(e.empty()) << len;
  }

  // Wrong bundle version, CRC re-stamped.
  std::vector<uint8_t> patched = bytes;
  const uint32_t bogus = 9;
  std::memcpy(patched.data() + sizeof(uint32_t), &bogus, sizeof(bogus));
  FixCrc(&patched);
  std::string e1;
  EXPECT_FALSE(WeightBundle::Deserialize(patched, &e1).has_value());
  EXPECT_NE(e1.find("bundle version 9"), std::string::npos) << e1;

  // Matrix magic inside layer 0 corrupted: the error must name the layer.
  // Header: magic(4) + version(4) + count(8) + name_len(8) = 24, then the
  // first name, then the embedded matrix magic.
  const size_t name_len = std::string("layers.0.fc1").size();
  std::vector<uint8_t> layer_bad = bytes;
  const uint32_t junk = 0x0bad0badu;
  std::memcpy(layer_bad.data() + 24 + name_len, &junk, sizeof(junk));
  FixCrc(&layer_bad);
  std::string e2;
  EXPECT_FALSE(WeightBundle::Deserialize(layer_bad, &e2).has_value());
  EXPECT_NE(e2.find("layers.0.fc1"), std::string::npos) << e2;
  EXPECT_NE(e2.find("magic"), std::string::npos) << e2;
}

TEST(SerializeFuzzTest, EmptyAndTinyBuffers) {
  for (size_t len : {size_t{0}, size_t{1}, size_t{3}, size_t{4}}) {
    const std::vector<uint8_t> buf(len, 0xab);
    std::string e1;
    EXPECT_FALSE(DeserializeTcaBme(buf, &e1).has_value());
    EXPECT_FALSE(e1.empty());
    std::string e2;
    EXPECT_FALSE(WeightBundle::Deserialize(buf, &e2).has_value());
    EXPECT_FALSE(e2.empty());
  }
}

}  // namespace
}  // namespace spinfer
