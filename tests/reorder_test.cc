#include "src/format/reorder.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "src/core/cpu_backend.h"
#include "src/numeric/compare.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

// A matrix with strongly skewed per-row nonzero counts: rows in the first
// half are dense, the rest nearly empty.
HalfMatrix SkewedMatrix(int64_t rows, int64_t cols, Rng& rng) {
  HalfMatrix w(rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    const double density = r < rows / 2 ? 0.9 : 0.05;
    for (int64_t c = 0; c < cols; ++c) {
      if (rng.Bernoulli(density)) {
        w.at(r, c) = Half(static_cast<float>(rng.Gaussian()) + 2.0f);
      }
    }
  }
  return w;
}

TEST(ReorderTest, PermutationIsABijection) {
  Rng rng(221);
  const HalfMatrix w = SkewedMatrix(128, 64, rng);
  const RowPermutation perm = BalanceRows(w, 64);
  ASSERT_EQ(perm.order.size(), 128u);
  std::vector<uint32_t> sorted = perm.order;
  std::sort(sorted.begin(), sorted.end());
  for (uint32_t i = 0; i < 128; ++i) {
    EXPECT_EQ(sorted[i], i);
  }
}

TEST(ReorderTest, ApplyUnapplyRoundtrips) {
  Rng rng(222);
  const HalfMatrix w = SkewedMatrix(96, 48, rng);
  const HalfMatrix x = HalfMatrix::Random(48, 8, rng, 0.5f);
  const RowPermutation perm = BalanceRows(w, 32);

  const HalfMatrix permuted = perm.Apply(w);
  // SpMM on permuted weights, then un-permute the outputs == SpMM on the
  // original weights.
  const FloatMatrix direct = CpuSpmm(TcaBmeMatrix::Encode(w), x);
  const FloatMatrix via_perm =
      perm.Unapply(CpuSpmm(TcaBmeMatrix::Encode(permuted), x));
  EXPECT_TRUE(CompareMatrices(via_perm, direct, 1e-5, 1e-4).ok);
}

TEST(ReorderTest, ReducesGroupImbalance) {
  Rng rng(223);
  const HalfMatrix w = SkewedMatrix(512, 128, rng);
  const int group = 64;
  const double before = RowGroupImbalance(w, group);
  const HalfMatrix balanced = BalanceRows(w, group).Apply(w);
  const double after = RowGroupImbalance(balanced, group);
  EXPECT_GT(before, 1.5);   // the skew is real
  EXPECT_LT(after, 1.05);   // and the deal flattens it
}

TEST(ReorderTest, UniformMatrixStaysBalanced) {
  Rng rng(224);
  const HalfMatrix w = HalfMatrix::RandomSparse(256, 128, 0.5, rng);
  const double before = RowGroupImbalance(w, 64);
  const double after = RowGroupImbalance(BalanceRows(w, 64).Apply(w), 64);
  EXPECT_LT(after, before + 0.01);
  EXPECT_LT(after, 1.05);
}

TEST(ReorderTest, AllZeroMatrix) {
  HalfMatrix w(64, 32);
  EXPECT_DOUBLE_EQ(RowGroupImbalance(w, 16), 1.0);
  const RowPermutation perm = BalanceRows(w, 16);
  EXPECT_EQ(perm.order.size(), 64u);
}

}  // namespace
}  // namespace spinfer
