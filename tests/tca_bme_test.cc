#include "src/format/tca_bme.h"

#include <bit>

#include <gtest/gtest.h>

#include "src/format/storage_model.h"
#include "src/gpusim/tensor_core.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

bool MatricesEqual(const HalfMatrix& a, const HalfMatrix& b) {
  for (int64_t r = 0; r < a.rows(); ++r) {
    for (int64_t c = 0; c < a.cols(); ++c) {
      if (!(a.at(r, c) == b.at(r, c))) {
        return false;
      }
    }
  }
  return a.rows() == b.rows() && a.cols() == b.cols();
}

class TcaBmeRoundtripTest : public ::testing::TestWithParam<double> {};

TEST_P(TcaBmeRoundtripTest, EncodeDecodeRoundtrips) {
  Rng rng(71);
  const HalfMatrix w = HalfMatrix::RandomSparse(128, 128, GetParam(), rng);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  EXPECT_EQ(enc.nnz(), w.CountNonZeros());
  EXPECT_TRUE(MatricesEqual(enc.Decode(), w));
}

INSTANTIATE_TEST_SUITE_P(Sparsities, TcaBmeRoundtripTest,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 1.0));

TEST(TcaBmeTest, NonMultipleDimensionsPad) {
  Rng rng(72);
  const HalfMatrix w = HalfMatrix::RandomSparse(100, 75, 0.5, rng);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  EXPECT_EQ(enc.padded_rows(), 128);
  EXPECT_EQ(enc.padded_cols(), 128);
  EXPECT_TRUE(MatricesEqual(enc.Decode(), w));
}

TEST(TcaBmeTest, AlternateGroupTileShapes) {
  Rng rng(73);
  const HalfMatrix w = HalfMatrix::RandomSparse(96, 160, 0.6, rng);
  for (const auto& [gr, gc] : {std::pair{16, 16}, {32, 64}, {64, 16}, {128, 128}}) {
    TcaBmeConfig cfg;
    cfg.gt_rows = gr;
    cfg.gt_cols = gc;
    const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w, cfg);
    EXPECT_TRUE(MatricesEqual(enc.Decode(), w)) << gr << "x" << gc;
  }
}

TEST(TcaBmeTest, BitmapPopcountsSumToNnz) {
  Rng rng(74);
  const HalfMatrix w = HalfMatrix::RandomSparse(64, 64, 0.5, rng);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  int64_t bits = 0;
  for (uint64_t b : enc.bitmaps()) {
    bits += std::popcount(b);
  }
  EXPECT_EQ(bits, enc.nnz());
}

TEST(TcaBmeTest, GtileOffsetsDelimitSegments) {
  Rng rng(75);
  const HalfMatrix w = HalfMatrix::RandomSparse(128, 192, 0.45, rng);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  ASSERT_EQ(static_cast<int64_t>(enc.gtile_offsets().size()), enc.num_group_tiles() + 1);
  EXPECT_EQ(enc.gtile_offsets().front(), 0u);
  EXPECT_EQ(enc.gtile_offsets().back(), enc.values().size());
  for (int64_t gt = 0; gt < enc.num_group_tiles(); ++gt) {
    // Segment length >= popcount of the GroupTile's bitmaps (padding only
    // adds).
    int64_t bits = 0;
    for (int tc = 0; tc < enc.tcs_per_gt(); ++tc) {
      for (int q = 0; q < 4; ++q) {
        bits += std::popcount(enc.bitmaps()[enc.BitmapIndex(gt, tc, q)]);
      }
    }
    const int64_t seg = enc.gtile_offsets()[gt + 1] - enc.gtile_offsets()[gt];
    EXPECT_GE(seg, bits);
    EXPECT_LT(seg - bits, enc.config().value_align_halves);
    // Alignment: every segment starts on an 8-byte boundary.
    EXPECT_EQ(enc.gtile_offsets()[gt] % enc.config().value_align_halves, 0u);
  }
}

TEST(TcaBmeTest, StorageMatchesEq9UpToPadding) {
  Rng rng(76);
  const HalfMatrix w = HalfMatrix::RandomSparse(256, 256, 0.5, rng);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  const uint64_t model = TcaBmeStorageModel(256, 256, enc.nnz());
  EXPECT_GE(enc.StorageBytes(), model);
  // Padding is at most (align-1) halves per GroupTile.
  const uint64_t max_pad =
      2ull * (enc.config().value_align_halves - 1) * enc.num_group_tiles();
  EXPECT_LE(enc.StorageBytes() - model, max_pad);
}

TEST(TcaBmeTest, CompressionRatioAboveOneAt30Percent) {
  // The paper's headline storage claim: CR > 1 even at 30% sparsity.
  Rng rng(77);
  const HalfMatrix w = HalfMatrix::RandomSparse(512, 512, 0.3, rng);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  EXPECT_GT(enc.CompressionRatio(), 1.0);
}

TEST(TcaBmeTest, CompressionRatioBeatsAlternativesAt50Percent) {
  Rng rng(78);
  const HalfMatrix w = HalfMatrix::RandomSparse(512, 512, 0.5, rng);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  // CR ~ 2 / (2*0.5 + 0.125) ~ 1.77.
  EXPECT_GT(enc.CompressionRatio(), 1.6);
  EXPECT_LT(enc.CompressionRatio(), OptimalCompressionRatio(0.5));
}

// Cross-check with the Tensor Core layout: the values of a quadrant appear
// in exactly the order lanes consume them (bit 2i before 2i+1, increasing
// lane), which is what makes MaskedPopCount the correct offset.
TEST(TcaBmeTest, QuadrantValueOrderMatchesLaneBitOrder) {
  Rng rng(79);
  TcaBmeConfig cfg;
  cfg.gt_rows = 16;
  cfg.gt_cols = 16;  // one TCTile per GroupTile
  const HalfMatrix w = HalfMatrix::RandomSparse(16, 16, 0.4, rng);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w, cfg);
  size_t cursor = 0;
  for (int q = 0; q < 4; ++q) {
    const uint64_t bitmap = enc.bitmaps()[enc.BitmapIndex(0, 0, q)];
    for (int lane = 0; lane < kWarpSize; ++lane) {
      for (int half = 0; half < 2; ++half) {
        if ((bitmap >> (2 * lane + half)) & 1ull) {
          const auto [qr, qc] = MmaAQuadrantCoord(lane, half);
          const int64_t r = qr + (q % 2) * 8;
          const int64_t c = qc + (q / 2) * 8;
          EXPECT_EQ(enc.values()[cursor], w.at(r, c))
              << "q=" << q << " lane=" << lane << " half=" << half;
          ++cursor;
        }
      }
    }
  }
  EXPECT_EQ(cursor, static_cast<size_t>(enc.nnz()));
}

}  // namespace
}  // namespace spinfer
