// SPINFER_CHECK failure hook (SetCheckFailureHandler).
//
// The contract under test (src/util/check.h): the installed handler runs
// after the diagnostic and before abort(); it runs at most once per process,
// so a SPINFER_CHECK failing *inside* the handler skips straight to abort
// instead of recursing; installation returns the previous handler; nullptr
// uninstalls. Everything abort()s, so the positive paths are death tests —
// each EXPECT_DEATH child re-executes the statement in a fresh process, which
// is also what isolates the once-per-process latch between tests.
//
// gtest on Linux matches death output with POSIX ERE (no lookarounds), so
// "did not re-enter" is asserted structurally: the correct output *ends* at
// the nested diagnostic ("...\n$"), while a re-entered handler would print
// its HOOK-REENTERED marker after it.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/util/check.h"

namespace spinfer {
namespace {

void PrintingHandler() {
  std::fprintf(stderr, "HOOK-RAN\n");
  std::fflush(stderr);
}

int g_nested_entries = 0;

void NestedFailureHandler() {
  ++g_nested_entries;
  if (g_nested_entries > 1) {
    // Only reachable if CheckFailed re-entered the handler — the contract
    // violation this test exists to catch.
    std::fprintf(stderr, "HOOK-REENTERED\n");
    std::fflush(stderr);
    return;
  }
  std::fprintf(stderr, "HOOK-FIRST\n");
  std::fflush(stderr);
  SPINFER_CHECK_MSG(false, "nested failure inside handler");
}

TEST(CheckHookDeathTest, HandlerRunsAfterDiagnosticBeforeAbort) {
  // Diagnostic first, then the handler's marker: ".*" spans both in order
  // (gtest's POSIX regex is compiled without REG_NEWLINE, so '.' crosses
  // line boundaries).
  EXPECT_DEATH(
      {
        SetCheckFailureHandler(&PrintingHandler);
        SPINFER_CHECK_MSG(false, "boom for hook test");
      },
      "boom for hook test.*HOOK-RAN");
}

TEST(CheckHookDeathTest, NestedCheckInsideHandlerAbortsWithoutReentry) {
  // Expected child stderr, in full:
  //   [spinfer] ...: check failed: false: outer failure
  //   HOOK-FIRST
  //   [spinfer] ...: check failed: false: nested failure inside handler
  // then abort. The "\n$" anchor proves the handler did not run again (no
  // HOOK-REENTERED, no second HOOK-FIRST after the nested diagnostic).
  EXPECT_DEATH(
      {
        g_nested_entries = 0;
        SetCheckFailureHandler(&NestedFailureHandler);
        SPINFER_CHECK_MSG(false, "outer failure");
      },
      "outer failure.*HOOK-FIRST.*nested failure inside handler\n$");
}

TEST(CheckHookDeathTest, UninstalledHandlerDoesNotRun) {
  // Install then uninstall: the death output is the diagnostic alone — the
  // "\n$" anchor would fail if HOOK-RAN were printed before abort.
  EXPECT_DEATH(
      {
        SetCheckFailureHandler(&PrintingHandler);
        SetCheckFailureHandler(nullptr);
        SPINFER_CHECK_MSG(false, "no hook expected");
      },
      "no hook expected\n$");
}

TEST(CheckHookTest, InstallReturnsPreviousHandler) {
  // Pure install/uninstall bookkeeping — no failure triggered, no death.
  CheckFailureHandler prev0 = SetCheckFailureHandler(&PrintingHandler);
  CheckFailureHandler prev1 = SetCheckFailureHandler(&NestedFailureHandler);
  EXPECT_EQ(prev1, &PrintingHandler);
  CheckFailureHandler prev2 = SetCheckFailureHandler(nullptr);
  EXPECT_EQ(prev2, &NestedFailureHandler);
  // Restore whatever was installed before this test (normally nullptr).
  SetCheckFailureHandler(prev0);
}

}  // namespace
}  // namespace spinfer
