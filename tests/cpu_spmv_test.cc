// Differential suite for the bitmap-direct SpMV fast path.
//
// The load-bearing property is bit-identity with the N-blocked CpuSpmm at
// N = 1: the public CpuSpmm* entries route single-column calls to SpMV, so
// any bit of divergence would make batch-1 results differ from the same
// sequence decoded inside a larger batch. The N-blocked reference is reached
// through CpuSpmmAccumulateIntoVariant, which deliberately never routes.
#include "src/core/cpu_spmv.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/core/cpu_backend.h"
#include "src/format/tca_bme_quant.h"
#include "src/util/cpu_features.h"
#include "src/util/random.h"
#include "src/util/thread_pool.h"

namespace spinfer {
namespace {

void ExpectBitIdentical(const FloatMatrix& a, const FloatMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (int64_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i])
        << "first mismatch at flat index " << i << " of " << a.size();
  }
}

// The N-blocked tiling on the same single-column input: the ground truth
// every SpMV result in this file is compared against.
FloatMatrix SpmmReferenceN1(const TcaBmeMatrix& enc, const HalfMatrix& x) {
  SpmmWorkspace ws;
  FloatMatrix ref(enc.rows(), 1);
  ref.Fill(0.0f);
  CpuSpmmAccumulateIntoVariant(enc, x, &ws, &ref, ActiveCpuSpmmVariant());
  return ref;
}

// Densities 30%..99% (sparsity 0.7 down to 0.01): from mostly-empty bitmaps
// through every-tile-populated, the regime the decode fast path targets.
class CpuSpmvDensitySweep : public ::testing::TestWithParam<double> {};

TEST_P(CpuSpmvDensitySweep, BitIdenticalToSpmmAtN1) {
  const double sparsity = GetParam();
  Rng rng(701 + static_cast<uint64_t>(sparsity * 1000));
  const HalfMatrix w = HalfMatrix::RandomSparse(160, 224, sparsity, rng);
  const HalfMatrix x = HalfMatrix::Random(224, 1, rng, 0.5f);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  const FloatMatrix ref = SpmmReferenceN1(enc, x);

  SpmmWorkspace ws;
  FloatMatrix direct;
  CpuSpmvInto(enc, x, &ws, &direct);
  ExpectBitIdentical(direct, ref);

  // The routed public entry must land on the same bits (it dispatches to
  // SpMV for this shape).
  FloatMatrix routed;
  CpuSpmmInto(enc, x, &ws, &routed);
  ExpectBitIdentical(routed, ref);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CpuSpmvDensitySweep,
                         ::testing::Values(0.7, 0.5, 0.3, 0.1, 0.01));

TEST(CpuSpmvTest, RaggedShapesOffTileBoundaries) {
  // Partial BitmapTiles on both edges exercise the shared guarded edge walk.
  const std::pair<int64_t, int64_t> shapes[] = {{70, 90}, {129, 257}, {33, 47}};
  for (const auto& [m, k] : shapes) {
    Rng rng(702 + static_cast<uint64_t>(m));
    const HalfMatrix w = HalfMatrix::RandomSparse(m, k, 0.5, rng);
    const HalfMatrix x = HalfMatrix::Random(k, 1, rng, 0.5f);
    const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
    SpmmWorkspace ws;
    FloatMatrix got;
    CpuSpmvInto(enc, x, &ws, &got);
    ExpectBitIdentical(got, SpmmReferenceN1(enc, x));
  }
}

TEST(CpuSpmvTest, AccumulateAddsIntoExistingOutput) {
  Rng rng(703);
  const HalfMatrix w = HalfMatrix::RandomSparse(96, 128, 0.5, rng);
  const HalfMatrix x = HalfMatrix::Random(128, 1, rng, 0.5f);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  SpmmWorkspace ws_spmv;
  SpmmWorkspace ws_ref;
  FloatMatrix got(96, 1);
  FloatMatrix ref(96, 1);
  got.Fill(2.5f);
  ref.Fill(2.5f);
  CpuSpmvAccumulateInto(enc, x, &ws_spmv, &got);
  CpuSpmmAccumulateIntoVariant(enc, x, &ws_ref, &ref, ActiveCpuSpmmVariant());
  ExpectBitIdentical(got, ref);
}

TEST(CpuSpmvTest, SimdVariantsBitIdentical) {
  if (!CpuSpmmVariantAvailable(CpuSpmmVariant::kAvx2)) {
    GTEST_SKIP() << "AVX2 variant unavailable on this build/machine ("
                 << CpuFeaturesSummary() << "); nothing to cross-check";
  }
  for (const double sparsity : {0.7, 0.5, 0.3, 0.1, 0.01}) {
    Rng rng(704 + static_cast<uint64_t>(sparsity * 1000));
    const HalfMatrix w = HalfMatrix::RandomSparse(160, 224, sparsity, rng);
    const HalfMatrix x = HalfMatrix::Random(224, 1, rng, 0.5f);
    const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
    SpmmWorkspace ws;
    FloatMatrix portable(160, 1);
    portable.Fill(0.0f);
    CpuSpmvAccumulateIntoVariant(enc, x, &ws, &portable,
                                 CpuSpmmVariant::kPortable);
    FloatMatrix avx2(160, 1);
    avx2.Fill(0.0f);
    CpuSpmvAccumulateIntoVariant(enc, x, &ws, &avx2, CpuSpmmVariant::kAvx2);
    ExpectBitIdentical(portable, avx2);
  }
}

TEST(CpuSpmvTest, BitIdenticalAcrossThreadCounts) {
  Rng rng(705);
  const HalfMatrix w = HalfMatrix::RandomSparse(256, 192, 0.6, rng);
  const HalfMatrix x = HalfMatrix::Random(192, 1, rng, 0.5f);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  SpmmWorkspace ws;
  ThreadPool::SetGlobalThreads(1);
  FloatMatrix one;
  CpuSpmvInto(enc, x, &ws, &one);
  for (const int threads : {2, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    FloatMatrix got;
    CpuSpmvInto(enc, x, &ws, &got);
    ExpectBitIdentical(one, got);
  }
  ThreadPool::SetGlobalThreads(0);  // restore the default pool
}

TEST(CpuSpmvTest, QuantIntoBitIdenticalToExplicitHalfStaging) {
  // The FP32 entry rounds activations to FP16 while filling the panel; the
  // decode path (TinyTransformer::MatmulInto) relies on this equivalence.
  Rng rng(706);
  const HalfMatrix w = HalfMatrix::RandomSparse(96, 128, 0.6, rng);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  FloatMatrix x(128, 1);
  for (int64_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.Gaussian() * 0.5);
  }
  HalfMatrix xh(128, 1);
  for (int64_t i = 0; i < x.size(); ++i) {
    xh.data()[i] = Half(x.data()[i]);
  }
  SpmmWorkspace ws_staged;
  SpmmWorkspace ws_quant;
  FloatMatrix staged;
  FloatMatrix quant;
  CpuSpmvInto(enc, xh, &ws_staged, &staged);
  CpuSpmvQuantInto(enc, x, &ws_quant, &quant);
  ExpectBitIdentical(quant, staged);
}

TEST(CpuSpmvTest, WarmedDecodeLoopIsAllocationFree) {
  // A decode loop repeats the same shapes forever; after the first call the
  // workspace and output must never grow again, and reuse must not change
  // bits.
  Rng rng(707);
  const HalfMatrix w = HalfMatrix::RandomSparse(96, 128, 0.6, rng);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  const TcaBmeQuantMatrix encq =
      TcaBmeQuantMatrix::Encode(HalfMatrix::RandomSparse(96, 128, 0.6, rng));
  SpmmWorkspace ws;
  FloatMatrix out;
  FloatMatrix out_q;
  int64_t warm_grows = -1;
  for (int step = 0; step < 5; ++step) {
    Rng xrng(800 + static_cast<uint64_t>(step));
    const HalfMatrix x = HalfMatrix::Random(128, 1, xrng, 0.5f);
    FloatMatrix xf(128, 1);
    for (int64_t i = 0; i < xf.size(); ++i) {
      xf.data()[i] = x.data()[i].ToFloat();
    }
    CpuSpmvInto(enc, x, &ws, &out);
    CpuSpmvInt8Into(encq, xf, &ws, &out_q);
    if (warm_grows < 0) {
      warm_grows = ws.grow_count();
    } else {
      EXPECT_EQ(ws.grow_count(), warm_grows)
          << "workspace grew on a warmed decode step (step " << step << ")";
    }
    ExpectBitIdentical(out, SpmmReferenceN1(enc, x));
  }
  EXPECT_GT(ws.capacity_bytes(), 0u);
}

// --- INT8 path ------------------------------------------------------------

// Straightforward scalar model of the documented INT8 contract, written
// against the format accessors only: symmetric absmax activation
// quantization, exact int32 dot per BitmapTile row in ascending-column
// order, one scale * float(idot) mul-then-add per nonzero row in storage
// order. The kernel must match it bit for bit.
FloatMatrix Int8Reference(const TcaBmeQuantMatrix& wq, const FloatMatrix& x) {
  const int64_t k = x.rows();
  float absmax = 0.0f;
  for (int64_t i = 0; i < k; ++i) {
    absmax = std::max(absmax, std::fabs(x.data()[i]));
  }
  const float x_scale = absmax > 0.0f ? absmax / 127.0f : 1.0f;
  const float inv = absmax > 0.0f ? 127.0f / absmax : 0.0f;
  std::vector<int32_t> xq(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) {
    const long q = std::lrintf(x.data()[i] * inv);
    xq[static_cast<size_t>(i)] = static_cast<int32_t>(std::clamp(q, -127L, 127L));
  }

  FloatMatrix out(wq.rows(), 1);
  out.Fill(0.0f);
  const TcaBmeConfig& cfg = wq.config();
  const int tc_rows = wq.tc_rows_per_gt();
  const int tc_cols = wq.tc_cols_per_gt();
  for (int64_t gt = 0; gt < wq.num_group_tiles(); ++gt) {
    const int64_t base_r = (gt / wq.gt_grid_cols()) * cfg.gt_rows;
    const int64_t base_c = (gt % wq.gt_grid_cols()) * cfg.gt_cols;
    size_t cursor = wq.gtile_offsets()[gt];
    for (int tcc = 0; tcc < tc_cols; ++tcc) {
      for (int tcr = 0; tcr < tc_rows; ++tcr) {
        const int tc = tcc * tc_rows + tcr;
        for (int q = 0; q < 4; ++q) {
          const int64_t bi = wq.BitmapIndex(gt, tc, q);
          const uint64_t bitmap = wq.bitmaps()[bi];
          if (bitmap == 0) {
            continue;
          }
          const float scale = wq.scales()[bi].ToFloat() * x_scale;
          const int64_t bt_r = base_r + tcr * kTcTileDim + (q % 2) * kBitmapTileDim;
          const int64_t bt_c = base_c + tcc * kTcTileDim + (q / 2) * kBitmapTileDim;
          for (int rr = 0; rr < kBitmapTileDim; ++rr) {
            int32_t idot = 0;
            bool any = false;
            for (int cc = 0; cc < kBitmapTileDim; ++cc) {
              if (((bitmap >> (rr * kBitmapTileDim + cc)) & 1ull) == 0) {
                continue;
              }
              const int8_t code = wq.codes()[cursor++];
              if (bt_r + rr < wq.rows() && bt_c + cc < wq.cols()) {
                idot += static_cast<int32_t>(code) *
                        xq[static_cast<size_t>(bt_c + cc)];
                any = true;
              }
            }
            if (any) {
              out.at(bt_r + rr, 0) += scale * static_cast<float>(idot);
            }
          }
        }
      }
    }
  }
  return out;
}

TEST(CpuSpmvInt8Test, MatchesScalarContractReference) {
  for (const auto& [m, k] : {std::pair<int64_t, int64_t>{160, 224},
                             std::pair<int64_t, int64_t>{70, 90}}) {
    for (const double sparsity : {0.7, 0.3, 0.01}) {
      Rng rng(708 + static_cast<uint64_t>(m + sparsity * 100));
      const HalfMatrix w = HalfMatrix::RandomSparse(m, k, sparsity, rng);
      const TcaBmeQuantMatrix encq = TcaBmeQuantMatrix::Encode(w);
      FloatMatrix x(k, 1);
      for (int64_t i = 0; i < x.size(); ++i) {
        x.data()[i] = static_cast<float>(rng.Gaussian() * 0.5);
      }
      SpmmWorkspace ws;
      FloatMatrix got;
      CpuSpmvInt8Into(encq, x, &ws, &got);
      ExpectBitIdentical(got, Int8Reference(encq, x));
    }
  }
}

TEST(CpuSpmvInt8Test, ApproximatesDequantizedMatmul) {
  // End-to-end sanity: INT8 output must track the dequantized-weight matmul
  // within combined weight+activation quantization error.
  Rng rng(709);
  const HalfMatrix w = HalfMatrix::RandomSparse(96, 128, 0.5, rng);
  const TcaBmeQuantMatrix encq = TcaBmeQuantMatrix::Encode(w);
  const TcaBmeMatrix deq = TcaBmeMatrix::Encode(encq.Decode());
  FloatMatrix x(128, 1);
  for (int64_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.Gaussian() * 0.5);
  }
  SpmmWorkspace ws;
  FloatMatrix got;
  CpuSpmvInt8Into(encq, x, &ws, &got);
  FloatMatrix ref;
  CpuSpmvQuantInto(deq, x, &ws, &ref);
  double max_abs_ref = 0.0;
  for (int64_t i = 0; i < ref.size(); ++i) {
    max_abs_ref = std::max(max_abs_ref, std::fabs(static_cast<double>(ref.data()[i])));
  }
  for (int64_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], ref.data()[i], 0.05 * max_abs_ref + 0.05)
        << "at row " << i;
  }
}

TEST(CpuSpmvInt8Test, SimdVariantsAndThreadCountsBitIdentical) {
  Rng rng(710);
  const HalfMatrix w = HalfMatrix::RandomSparse(160, 224, 0.5, rng);
  const TcaBmeQuantMatrix encq = TcaBmeQuantMatrix::Encode(w);
  FloatMatrix x(224, 1);
  for (int64_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.Gaussian() * 0.5);
  }
  SpmmWorkspace ws;
  FloatMatrix portable(160, 1);
  portable.Fill(0.0f);
  CpuSpmvInt8AccumulateIntoVariant(encq, x, &ws, &portable,
                                   CpuSpmmVariant::kPortable);
  if (CpuSpmmVariantAvailable(CpuSpmmVariant::kAvx2)) {
    FloatMatrix avx2(160, 1);
    avx2.Fill(0.0f);
    CpuSpmvInt8AccumulateIntoVariant(encq, x, &ws, &avx2, CpuSpmmVariant::kAvx2);
    ExpectBitIdentical(portable, avx2);
  }
  ThreadPool::SetGlobalThreads(1);
  FloatMatrix one;
  CpuSpmvInt8Into(encq, x, &ws, &one);
  for (const int threads : {2, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    FloatMatrix got;
    CpuSpmvInt8Into(encq, x, &ws, &got);
    ExpectBitIdentical(one, got);
  }
  ThreadPool::SetGlobalThreads(0);
}

TEST(CpuSpmvTest, AllZeroMatrixAndZeroActivation) {
  HalfMatrix w(64, 64);
  Rng rng(711);
  const HalfMatrix x = HalfMatrix::Random(64, 1, rng);
  SpmmWorkspace ws;
  FloatMatrix out;
  CpuSpmvInto(TcaBmeMatrix::Encode(w), x, &ws, &out);
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out.data()[i], 0.0f);
  }
  // All-zero activations hit the absmax == 0 guard in the INT8 quantizer.
  const TcaBmeQuantMatrix encq =
      TcaBmeQuantMatrix::Encode(HalfMatrix::RandomSparse(64, 64, 0.5, rng));
  FloatMatrix zx(64, 1);
  zx.Fill(0.0f);
  FloatMatrix out_q;
  CpuSpmvInt8Into(encq, zx, &ws, &out_q);
  for (int64_t i = 0; i < out_q.size(); ++i) {
    EXPECT_EQ(out_q.data()[i], 0.0f);
  }
}

}  // namespace
}  // namespace spinfer
