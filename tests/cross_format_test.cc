// Cross-format consistency and randomized ("fuzz-lite") property tests that
// span the whole format layer at once.
#include <bit>

#include <gtest/gtest.h>

#include "src/core/cpu_backend.h"
#include "src/core/spinfer_kernel.h"
#include "src/format/bcsr.h"
#include "src/format/csr.h"
#include "src/format/serialize.h"
#include "src/format/sparta_format.h"
#include "src/format/tca_bme.h"
#include "src/format/tca_bme_quant.h"
#include "src/format/tiled_csl.h"
#include "src/numeric/compare.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

bool SameBits(const HalfMatrix& a, const HalfMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return false;
  }
  for (int64_t i = 0; i < a.size(); ++i) {
    if (!(a.data()[i] == b.data()[i])) {
      return false;
    }
  }
  return true;
}

// Every lossless format decodes to the same matrix; the lossy (quantized)
// one preserves at least the mask.
TEST(CrossFormatTest, AllFormatsDecodeConsistently) {
  Rng rng(251);
  for (const auto& [rows, cols, s] :
       {std::tuple<int64_t, int64_t, double>{64, 64, 0.5},
        {100, 70, 0.3},
        {128, 256, 0.8}}) {
    const HalfMatrix w = HalfMatrix::RandomSparse(rows, cols, s, rng);
    EXPECT_TRUE(SameBits(CsrMatrix::Encode(w).Decode(), w));
    EXPECT_TRUE(SameBits(TiledCslMatrix::Encode(w).Decode(), w));
    EXPECT_TRUE(SameBits(SpartaMatrix::Encode(w).Decode(), w));
    EXPECT_TRUE(SameBits(BcsrMatrix::Encode(w).Decode(), w));
    EXPECT_TRUE(SameBits(TcaBmeMatrix::Encode(w).Decode(), w));
    const HalfMatrix quant = TcaBmeQuantMatrix::Encode(w).Decode();
    for (int64_t i = 0; i < w.size(); ++i) {
      EXPECT_EQ(w.data()[i].IsZero(), quant.data()[i].IsZero());
    }
  }
}

// All formats agree byte-for-byte on the nonzero count.
TEST(CrossFormatTest, NnzAgreesAcrossFormats) {
  Rng rng(252);
  const HalfMatrix w = HalfMatrix::RandomSparse(96, 80, 0.55, rng);
  const int64_t nnz = w.CountNonZeros();
  EXPECT_EQ(CsrMatrix::Encode(w).nnz(), nnz);
  EXPECT_EQ(TiledCslMatrix::Encode(w).nnz(), nnz);
  EXPECT_EQ(TcaBmeMatrix::Encode(w).nnz(), nnz);
  EXPECT_EQ(TcaBmeQuantMatrix::Encode(w).nnz(), nnz);
  const SpartaMatrix sp = SpartaMatrix::Encode(w);
  EXPECT_EQ(sp.structured_nnz() + sp.residual_nnz(), nnz);
}

// Randomized geometry fuzz: TCA-BME encode/decode/serialize/SpMM compose
// correctly for arbitrary shapes and GroupTile configurations.
TEST(CrossFormatTest, RandomGeometryFuzz) {
  Rng rng(253);
  const int kTrials = 25;
  for (int trial = 0; trial < kTrials; ++trial) {
    const int64_t rows = 1 + static_cast<int64_t>(rng.Below(200));
    const int64_t cols = 1 + static_cast<int64_t>(rng.Below(200));
    const double sparsity = rng.Uniform();
    TcaBmeConfig cfg;
    cfg.gt_rows = 16 * (1 + static_cast<int>(rng.Below(4)));
    cfg.gt_cols = 16 * (1 + static_cast<int>(rng.Below(4)));
    const HalfMatrix w = HalfMatrix::RandomSparse(rows, cols, sparsity, rng);
    const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w, cfg);

    // Roundtrip through memory and the serializer.
    EXPECT_TRUE(SameBits(enc.Decode(), w)) << trial;
    std::string error;
    const auto back = DeserializeTcaBme(SerializeTcaBme(enc), &error);
    ASSERT_TRUE(back.has_value()) << trial << ": " << error;
    EXPECT_TRUE(SameBits(back->Decode(), w)) << trial;

    // SpMM through the CPU backend against the reference.
    const int64_t n = 1 + static_cast<int64_t>(rng.Below(20));
    const HalfMatrix x = HalfMatrix::Random(cols, n, rng, 0.5f);
    const CompareResult cmp =
        CompareMatrices(CpuSpmm(enc, x), ReferenceGemm(w, x), 2e-3, 5e-2);
    EXPECT_TRUE(cmp.ok) << trial << ": " << cmp.ToString();
  }
}

// The warp-level kernel and the CPU backend agree on random geometries too.
TEST(CrossFormatTest, WarpKernelFuzz) {
  Rng rng(254);
  for (int trial = 0; trial < 8; ++trial) {
    const int64_t rows = 16 + static_cast<int64_t>(rng.Below(100));
    const int64_t cols = 16 + static_cast<int64_t>(rng.Below(100));
    const double sparsity = 0.3 + 0.6 * rng.Uniform();
    SpInferKernelConfig cfg;
    cfg.format.gt_rows = 16 * (1 + static_cast<int>(rng.Below(3)));
    cfg.format.gt_cols = 16 * (1 + static_cast<int>(rng.Below(3)));
    cfg.split_k = 1;
    const HalfMatrix w = HalfMatrix::RandomSparse(rows, cols, sparsity, rng);
    const HalfMatrix x =
        HalfMatrix::Random(cols, 1 + static_cast<int64_t>(rng.Below(17)), rng, 0.5f);
    const SpInferSpmmKernel kernel(cfg);
    const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w, cfg.format);
    const FloatMatrix warp = kernel.RunEncoded(enc, x, nullptr);
    const FloatMatrix cpu = CpuSpmm(enc, x);
    const CompareResult cmp = CompareMatrices(warp, cpu, 1e-3, 1e-2);
    EXPECT_TRUE(cmp.ok) << trial << ": " << cmp.ToString();
  }
}

// Storage ordering in the LLM regime (matches Fig. 3's curves): quantized
// TCA-BME < TCA-BME < everything; SparTA beats Tiled-CSL below ~60%
// sparsity and loses above (their curves cross between 60 and 70%); CSR is
// always worst.
TEST(CrossFormatTest, StorageOrderingHoldsAcrossRegime) {
  Rng rng(255);
  for (double s : {0.3, 0.5, 0.7}) {
    const HalfMatrix w = HalfMatrix::RandomSparse(512, 512, s, rng);
    const uint64_t quant = TcaBmeQuantMatrix::Encode(w).StorageBytes();
    const uint64_t tca = TcaBmeMatrix::Encode(w).StorageBytes();
    const uint64_t sparta = SpartaMatrix::Encode(w).StorageBytes();
    const uint64_t csl = TiledCslMatrix::Encode(w).StorageBytes();
    const uint64_t csr = CsrMatrix::Encode(w).StorageBytes();
    EXPECT_LT(quant, tca) << s;
    EXPECT_LT(tca, sparta) << s;
    EXPECT_LT(tca, csl) << s;
    if (s <= 0.5) {
      EXPECT_LT(sparta, csl) << s;
    } else if (s >= 0.7) {
      EXPECT_LT(csl, sparta) << s;
    }
    EXPECT_LT(csl, csr) << s;
  }
}

}  // namespace
}  // namespace spinfer
