#include "src/core/sparse_linear.h"

#include <gtest/gtest.h>

#include "src/numeric/compare.h"
#include "src/pruning/magnitude.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

TEST(SparseLinearTest, ForwardMatchesReference) {
  Rng rng(241);
  const HalfMatrix w = HalfMatrix::RandomSparse(128, 96, 0.6, rng);
  const HalfMatrix x = HalfMatrix::Random(96, 16, rng, 0.5f);
  const SparseLinear layer = SparseLinear::FromDense(w);
  EXPECT_EQ(layer.in_features(), 96);
  EXPECT_EQ(layer.out_features(), 128);
  EXPECT_NEAR(layer.sparsity(), w.Sparsity(), 1e-9);
  const CompareResult cmp =
      CompareMatrices(layer.Forward(x), ReferenceGemm(w, x), 2e-3, 5e-2);
  EXPECT_TRUE(cmp.ok) << cmp.ToString();
}

TEST(SparseLinearTest, BiasBroadcastsAcrossColumns) {
  Rng rng(242);
  const HalfMatrix w = HalfMatrix::RandomSparse(32, 32, 0.5, rng);
  const HalfMatrix x = HalfMatrix::Random(32, 4, rng, 0.5f);
  SparseLinear layer = SparseLinear::FromDense(w);
  std::vector<float> bias(32);
  for (size_t i = 0; i < bias.size(); ++i) {
    bias[i] = static_cast<float>(i);
  }
  layer.SetBias(bias);
  const FloatMatrix with_bias = layer.Forward(x);
  const FloatMatrix without = SparseLinear::FromDense(w).Forward(x);
  for (int64_t r = 0; r < 32; ++r) {
    for (int64_t c = 0; c < 4; ++c) {
      EXPECT_NEAR(with_bias.at(r, c), without.at(r, c) + static_cast<float>(r), 1e-4);
    }
  }
}

TEST(SparseLinearTest, TunedConstructionStaysCorrect) {
  Rng rng(243);
  const HalfMatrix w = HalfMatrix::RandomSparse(256, 128, 0.5, rng);
  const HalfMatrix x = HalfMatrix::Random(128, 16, rng, 0.5f);
  SparseLinear::Options opts;
  opts.tune = true;
  opts.expected_n = 16;
  const SparseLinear layer = SparseLinear::FromDense(w, opts);
  const CompareResult cmp =
      CompareMatrices(layer.Forward(x), ReferenceGemm(w, x), 2e-3, 5e-2);
  EXPECT_TRUE(cmp.ok) << cmp.ToString();
}

TEST(SparseLinearTest, StorageAndEstimateSane) {
  Rng rng(244);
  const HalfMatrix dense = HalfMatrix::Random(512, 512, rng, 0.05f);
  const HalfMatrix pruned = MagnitudePruner().Prune(dense, 0.6);
  const SparseLinear layer = SparseLinear::FromDense(pruned);
  EXPECT_LT(layer.StorageBytes(), 2ull * 512 * 512);  // beats dense FP16
  const double t = layer.EstimateGpuTimeUs(16, Rtx4090());
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 1000.0);
}

TEST(SparseLinearTest, ForwardIntoMatchesForwardAndReusesOutput) {
  Rng rng(246);
  const HalfMatrix w = HalfMatrix::RandomSparse(64, 96, 0.5, rng);
  const HalfMatrix x = HalfMatrix::Random(96, 8, rng, 0.5f);
  SparseLinear layer = SparseLinear::FromDense(w);
  std::vector<float> bias(64);
  for (size_t i = 0; i < bias.size(); ++i) {
    bias[i] = 0.25f * static_cast<float>(i);
  }
  layer.SetBias(bias);
  const FloatMatrix via_forward = layer.Forward(x);
  FloatMatrix out;
  for (int repeat = 0; repeat < 3; ++repeat) {
    layer.ForwardInto(x, &out);
    ASSERT_EQ(out.rows(), via_forward.rows());
    ASSERT_EQ(out.cols(), via_forward.cols());
    for (int64_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out.data()[i], via_forward.data()[i]) << "repeat " << repeat;
    }
  }
  // A smaller batch reuses the grown output and workspace.
  const HalfMatrix x1 = HalfMatrix::Random(96, 1, rng, 0.5f);
  layer.ForwardInto(x1, &out);
  const FloatMatrix fresh = layer.Forward(x1);
  for (int64_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out.data()[i], fresh.data()[i]);
  }
}

TEST(SparseLinearTest, ForwardQuantIntoMatchesForwardIntoWithBias) {
  // ForwardQuantInto fuses the FP32->FP16 activation cast into the kernel;
  // it must match the explicit-staging path bit for bit, bias included.
  Rng rng(247);
  const HalfMatrix w = HalfMatrix::RandomSparse(48, 80, 0.5, rng);
  SparseLinear layer = SparseLinear::FromDense(w);
  std::vector<float> bias(48);
  for (size_t i = 0; i < bias.size(); ++i) {
    bias[i] = 0.125f * static_cast<float>(i) - 1.0f;
  }
  layer.SetBias(bias);

  FloatMatrix x(80, 6);
  for (int64_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<float>(rng.Gaussian() * 0.5);
  }
  HalfMatrix xh(80, 6);
  for (int64_t i = 0; i < x.size(); ++i) {
    xh.data()[i] = Half(x.data()[i]);
  }

  FloatMatrix staged;
  layer.ForwardInto(xh, &staged);
  FloatMatrix quant;
  for (int repeat = 0; repeat < 2; ++repeat) {  // second pass reuses scratch
    layer.ForwardQuantInto(x, &quant);
    ASSERT_EQ(quant.rows(), staged.rows());
    ASSERT_EQ(quant.cols(), staged.cols());
    for (int64_t i = 0; i < quant.size(); ++i) {
      ASSERT_EQ(quant.data()[i], staged.data()[i]) << "repeat " << repeat;
    }
  }
}

TEST(SparseLinearTest, WrapsCheckpointMatrix) {
  Rng rng(245);
  const HalfMatrix w = HalfMatrix::RandomSparse(64, 64, 0.5, rng);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  const SparseLinear layer(enc);
  const HalfMatrix x = HalfMatrix::Random(64, 8, rng, 0.5f);
  EXPECT_TRUE(CompareMatrices(layer.Forward(x), ReferenceGemm(w, x), 2e-3, 5e-2).ok);
}

}  // namespace
}  // namespace spinfer
