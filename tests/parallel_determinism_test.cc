// Determinism of every parallel loop in the library: the same inputs must
// produce bit-identical outputs and identical PerfCounters no matter how many
// threads the global pool runs (--threads in the benches). This is the
// enforcement half of the ParallelFor determinism contract documented in
// src/util/thread_pool.h.
#include "src/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "src/baselines/kernel_registry.h"
#include "src/core/spinfer_kernel.h"
#include "src/format/tca_bme.h"
#include "src/obs/metrics.h"
#include "src/pruning/magnitude.h"
#include "src/pruning/sparsegpt.h"
#include "src/pruning/wanda.h"
#include "src/util/random.h"

namespace spinfer {
namespace {

const std::vector<int>& ThreadWidths() {
  static const std::vector<int> kWidths = {1, 2, 8};
  return kWidths;
}

bool BitIdentical(const FloatMatrix& a, const FloatMatrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), sizeof(float) * static_cast<size_t>(a.size())) ==
             0;
}

bool BitIdentical(const HalfMatrix& a, const HalfMatrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), sizeof(Half) * static_cast<size_t>(a.size())) ==
             0;
}

// --- ThreadPool / ParallelFor unit behaviour -------------------------------

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(8);
  constexpr int64_t kCount = 10000;
  std::vector<int> hits(kCount, 0);  // disjoint writes, safe without atomics
  pool.ParallelFor(0, kCount, [&](int64_t i) { hits[static_cast<size_t>(i)] += 1; });
  for (int64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[static_cast<size_t>(i)], 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, EmptyAndSingletonRanges) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, [&](int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.ParallelFor(7, 8, [&](int64_t i) {
    EXPECT_EQ(i, 7);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForCompletes) {
  ThreadPool pool(4);
  constexpr int64_t kOuter = 16;
  constexpr int64_t kInner = 64;
  std::vector<int> hits(kOuter * kInner, 0);
  pool.ParallelFor(0, kOuter, [&](int64_t o) {
    pool.ParallelFor(0, kInner,
                     [&](int64_t i) { hits[static_cast<size_t>(o * kInner + i)] += 1; });
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1) << "slot " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  pool.ParallelFor(0, 32, [&](int64_t) { EXPECT_EQ(std::this_thread::get_id(), caller); });
}

TEST(ThreadPoolTest, LargeGrainStillCoversRange) {
  ThreadPool pool(4);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(0, 100, [&](int64_t i) { hits[static_cast<size_t>(i)] += 1; },
                   /*grain=*/1000);
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1);
  }
}

// --- Scheduling statistics (src/util/thread_pool.h Stats) ------------------

TEST(ThreadPoolStatsTest, InlinePathsAreCountedExactly) {
  ThreadPool pool(1);
  const ThreadPool::Stats zero = pool.stats();
  EXPECT_EQ(zero.parallel_fors, 0u);
  EXPECT_EQ(zero.tasks_inline, 0u);

  std::atomic<int> calls{0};
  pool.ParallelFor(0, 100, [&](int64_t) { calls.fetch_add(1); });
  pool.Submit([&] { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 101);

  // Width 1 is fully inline: no task ever reaches a queue.
  const ThreadPool::Stats s = pool.stats();
  EXPECT_EQ(s.parallel_fors, 1u);
  EXPECT_EQ(s.parallel_fors_inline, 1u);
  EXPECT_EQ(s.tasks_inline, 1u);
  EXPECT_EQ(s.tasks_submitted, 0u);
  EXPECT_EQ(s.tasks_popped, 0u);
  EXPECT_EQ(s.tasks_stolen, 0u);
}

TEST(ThreadPoolStatsTest, DistributedParallelForAccountsHelperTasks) {
  ThreadPool pool(4);
  std::vector<int> hits(4096, 0);
  pool.ParallelFor(0, 4096, [&](int64_t i) { hits[static_cast<size_t>(i)] += 1; },
                   /*grain=*/16);
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }

  ThreadPool::Stats s = pool.stats();
  EXPECT_EQ(s.parallel_fors, 1u);
  EXPECT_EQ(s.parallel_fors_inline, 0u);
  // One helper task per worker (the caller is the fourth lane), all queued.
  EXPECT_EQ(s.tasks_submitted, 3u);
  EXPECT_EQ(s.tasks_inline, 0u);
  // Workers may still be draining the last helper tasks; what has been
  // consumed so far was either popped or stolen, never more than submitted.
  EXPECT_LE(s.tasks_popped + s.tasks_stolen, s.tasks_submitted);

  // A range that fits in one chunk takes the inline fast path even on a
  // wide pool; the counters are cumulative.
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 10, [&](int64_t) { calls.fetch_add(1); }, /*grain=*/100);
  EXPECT_EQ(calls.load(), 10);
  s = pool.stats();
  EXPECT_EQ(s.parallel_fors, 2u);
  EXPECT_EQ(s.parallel_fors_inline, 1u);
  EXPECT_EQ(s.tasks_submitted, 3u);
}

TEST(ThreadPoolStatsTest, PublishMetricsExportsGaugesToRegistry) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.ResetForTest();

  // Width 1 so every counter is quiescent and exact at publish time.
  ThreadPool pool(1);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 64, [&](int64_t) { calls.fetch_add(1); });
  pool.Submit([&] { calls.fetch_add(1); });
  pool.PublishMetrics();  // nullptr = the global registry

  EXPECT_EQ(reg.GetGauge("threadpool.num_threads")->Value(), 1.0);
  EXPECT_EQ(reg.GetGauge("threadpool.parallel_fors")->Value(), 1.0);
  EXPECT_EQ(reg.GetGauge("threadpool.parallel_fors_inline")->Value(), 1.0);
  EXPECT_EQ(reg.GetGauge("threadpool.tasks_inline")->Value(), 1.0);
  EXPECT_EQ(reg.GetGauge("threadpool.tasks_submitted")->Value(), 0.0);
  EXPECT_EQ(reg.GetGauge("threadpool.tasks_popped")->Value(), 0.0);
  EXPECT_EQ(reg.GetGauge("threadpool.tasks_stolen")->Value(), 0.0);

  // Re-publishing overwrites (gauges, not counters): totals must not double.
  pool.PublishMetrics();
  EXPECT_EQ(reg.GetGauge("threadpool.parallel_fors")->Value(), 1.0);
  reg.ResetForTest();
}

// --- Functional kernels ----------------------------------------------------

// Runs `name` on the same (w, x) at every thread width and requires the
// output matrix and counters to match the width-1 run exactly.
void ExpectKernelDeterministic(const std::string& name, const HalfMatrix& w,
                               const HalfMatrix& x) {
  FloatMatrix base_out;
  PerfCounters base_counters;
  for (int threads : ThreadWidths()) {
    ThreadPool::SetGlobalThreads(threads);
    PerfCounters counters;
    const FloatMatrix out = MakeKernel(name)->Run(w, x, &counters);
    if (threads == ThreadWidths().front()) {
      base_out = out;
      base_counters = counters;
      continue;
    }
    EXPECT_TRUE(BitIdentical(out, base_out)) << name << " at " << threads << " threads";
    EXPECT_TRUE(counters == base_counters)
        << name << " counters at " << threads << " threads:\n got "
        << counters.ToString() << "\nwant " << base_counters.ToString();
  }
  ThreadPool::SetGlobalThreads(1);
}

TEST(ParallelDeterminismTest, BaselineKernels) {
  Rng rng(2024);
  const HalfMatrix w = HalfMatrix::RandomSparse(192, 256, 0.6, rng);
  const HalfMatrix x = HalfMatrix::Random(256, 24, rng, 0.5f);
  for (const char* name : {"flash_llm", "smat", "sparta", "sputnik", "cusparse"}) {
    ExpectKernelDeterministic(name, w, x);
  }
}

TEST(ParallelDeterminismTest, SpInferKernelIncludingSplitK) {
  Rng rng(2025);
  const HalfMatrix w = HalfMatrix::RandomSparse(192, 384, 0.6, rng);
  const HalfMatrix x = HalfMatrix::Random(384, 16, rng, 0.5f);
  for (int split_k : {1, 3}) {
    SpInferKernelConfig cfg;
    cfg.split_k = split_k;
    const SpInferSpmmKernel kernel(cfg);
    FloatMatrix base_out;
    PerfCounters base_counters;
    for (int threads : ThreadWidths()) {
      ThreadPool::SetGlobalThreads(threads);
      PerfCounters counters;
      const FloatMatrix out = kernel.Run(w, x, &counters);
      if (threads == ThreadWidths().front()) {
        base_out = out;
        base_counters = counters;
        continue;
      }
      EXPECT_TRUE(BitIdentical(out, base_out))
          << "split_k=" << split_k << " at " << threads << " threads";
      EXPECT_TRUE(counters == base_counters)
          << "split_k=" << split_k << " counters at " << threads << " threads:\n got "
          << counters.ToString() << "\nwant " << base_counters.ToString();
    }
  }
  ThreadPool::SetGlobalThreads(1);
}

TEST(ParallelDeterminismTest, ReferenceGemm) {
  Rng rng(2026);
  const HalfMatrix w = HalfMatrix::RandomSparse(150, 130, 0.5, rng);
  const HalfMatrix x = HalfMatrix::Random(130, 9, rng, 0.5f);
  FloatMatrix base;
  for (int threads : ThreadWidths()) {
    ThreadPool::SetGlobalThreads(threads);
    const FloatMatrix out = ReferenceGemm(w, x);
    if (threads == ThreadWidths().front()) {
      base = out;
      continue;
    }
    EXPECT_TRUE(BitIdentical(out, base)) << threads << " threads";
  }
  ThreadPool::SetGlobalThreads(1);
}

// --- TCA-BME encoder -------------------------------------------------------

TEST(ParallelDeterminismTest, EncoderArraysIdentical) {
  Rng rng(2027);
  // Ragged shape on purpose: padding rows/cols exercise the per-row
  // alignment bookkeeping in the two-phase encoder.
  const HalfMatrix w = HalfMatrix::RandomSparse(200, 170, 0.65, rng);
  ThreadPool::SetGlobalThreads(1);
  const TcaBmeMatrix base = TcaBmeMatrix::Encode(w);
  for (int threads : ThreadWidths()) {
    ThreadPool::SetGlobalThreads(threads);
    const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
    EXPECT_EQ(enc.nnz(), base.nnz()) << threads << " threads";
    EXPECT_EQ(enc.gtile_offsets(), base.gtile_offsets()) << threads << " threads";
    EXPECT_EQ(enc.bitmaps(), base.bitmaps()) << threads << " threads";
    ASSERT_EQ(enc.values().size(), base.values().size()) << threads << " threads";
    for (size_t i = 0; i < enc.values().size(); ++i) {
      ASSERT_EQ(enc.values()[i].bits(), base.values()[i].bits())
          << "value " << i << " at " << threads << " threads";
    }
  }
  ThreadPool::SetGlobalThreads(1);
}

// --- Pruners ---------------------------------------------------------------

TEST(ParallelDeterminismTest, PrunersIdentical) {
  Rng rng(2028);
  const int64_t rows = 96;
  const int64_t cols = 64;
  const HalfMatrix w = HalfMatrix::Random(rows, cols, rng, 1.0f);

  std::vector<float> norms(static_cast<size_t>(cols));
  for (size_t i = 0; i < norms.size(); ++i) {
    norms[i] = 0.5f + 0.01f * static_cast<float>(i);
  }
  const int64_t samples = 32;
  std::vector<float> calib(static_cast<size_t>(samples * cols));
  Rng crng(7);
  for (float& v : calib) {
    v = static_cast<float>(crng.Gaussian());
  }

  const MagnitudePruner magnitude;
  const WandaPruner wanda(norms);
  const SparseGptPruner sparsegpt(calib, samples, cols, 0.01);
  const Pruner* pruners[] = {&magnitude, &wanda, &sparsegpt};
  const char* names[] = {"magnitude", "wanda", "sparsegpt"};

  for (size_t pi = 0; pi < 3; ++pi) {
    HalfMatrix base;
    for (int threads : ThreadWidths()) {
      ThreadPool::SetGlobalThreads(threads);
      const HalfMatrix pruned = pruners[pi]->Prune(w, 0.6);
      if (threads == ThreadWidths().front()) {
        base = pruned;
        continue;
      }
      EXPECT_TRUE(BitIdentical(pruned, base))
          << names[pi] << " at " << threads << " threads";
    }
  }
  ThreadPool::SetGlobalThreads(1);
}

}  // namespace
}  // namespace spinfer
