// Property tests over the analytical performance layer: monotonicities and
// invariants that must hold for the figure benches to be trustworthy.
#include <gtest/gtest.h>

#include "src/baselines/kernel_registry.h"
#include "src/core/spinfer_kernel.h"
#include "src/llm/engine.h"

namespace spinfer {
namespace {

SpmmProblem Problem(int64_t m, int64_t k, int64_t n, double s) {
  SpmmProblem p;
  p.m = m;
  p.k = k;
  p.n = n;
  p.sparsity = s;
  return p;
}

// SpInfer's modeled time never increases with sparsity (fewer bytes).
TEST(CostModelPropertiesTest, SpInferTimeMonotoneInSparsity) {
  const DeviceSpec dev = Rtx4090();
  const auto kernel = MakeKernel("spinfer");
  double prev = 1e30;
  for (double s = 0.1; s <= 0.95; s += 0.05) {
    const double t = kernel->Estimate(Problem(8192, 8192, 16, s), dev).time.total_us;
    EXPECT_LE(t, prev + 1e-9) << "s=" << s;
    prev = t;
  }
}

// Every kernel's time is monotone in each shape dimension.
TEST(CostModelPropertiesTest, TimesMonotoneInShape) {
  const DeviceSpec dev = Rtx4090();
  for (const std::string& name : KernelNames()) {
    const auto kernel = MakeKernel(name);
    const double base = kernel->Estimate(Problem(4096, 4096, 16, 0.5), dev).time.total_us;
    EXPECT_GE(kernel->Estimate(Problem(8192, 4096, 16, 0.5), dev).time.total_us, base)
        << name << " M";
    EXPECT_GE(kernel->Estimate(Problem(4096, 8192, 16, 0.5), dev).time.total_us, base)
        << name << " K";
    EXPECT_GE(kernel->Estimate(Problem(4096, 4096, 256, 0.5), dev).time.total_us, base)
        << name << " N";
  }
}

// A6000 (lower bandwidth and fewer SMs) is never faster than RTX4090.
TEST(CostModelPropertiesTest, A6000NeverFasterThan4090) {
  for (const std::string& name : KernelNames()) {
    const auto kernel = MakeKernel(name);
    const SpmmProblem p = Problem(8192, 8192, 16, 0.5);
    EXPECT_GE(kernel->Estimate(p, A6000()).time.total_us,
              kernel->Estimate(p, Rtx4090()).time.total_us)
        << name;
  }
}

// Utilizations are physical: in (0, 1].
TEST(CostModelPropertiesTest, UtilizationsBounded) {
  const DeviceSpec dev = Rtx4090();
  for (const std::string& name : KernelNames()) {
    const KernelEstimate est =
        MakeKernel(name)->Estimate(Problem(8192, 8192, 32, 0.6), dev);
    EXPECT_GT(est.time.bw_utilization, 0.0) << name;
    EXPECT_LE(est.time.bw_utilization, 1.0) << name;
    EXPECT_GE(est.time.tc_utilization, 0.0) << name;
    EXPECT_LE(est.time.tc_utilization, 1.0) << name;
    EXPECT_GT(est.time.total_us, 0.0) << name;
  }
}

// Decode-phase estimates are bandwidth-limited, not compute-limited, for
// the Tensor-Core kernels (the paper's §3.2.2 premise).
TEST(CostModelPropertiesTest, DecodePhaseIsMemoryBound) {
  const DeviceSpec dev = Rtx4090();
  for (const char* name : {"cublas_tc", "flash_llm"}) {
    const KernelEstimate est =
        MakeKernel(name)->Estimate(Problem(28672, 8192, 16, 0.5), dev);
    EXPECT_GT(est.time.mem_us, est.time.compute_us) << name;
  }
}

// Engine-level sanity sweeps: latency grows with batch and model size.
TEST(CostModelPropertiesTest, EngineLatencyMonotone) {
  EngineConfig cfg;
  cfg.model = Opt13B();
  cfg.framework = Framework::kSpInfer;
  cfg.device = Rtx4090();
  cfg.num_gpus = 2;
  cfg.input_len = 128;
  cfg.output_len = 64;
  cfg.sparsity = 0.6;
  double prev = 0.0;
  for (int64_t batch : {1, 4, 16, 32}) {
    cfg.batch = batch;
    const InferenceReport r = SimulateInference(cfg);
    ASSERT_FALSE(r.oom);
    EXPECT_GT(r.total_ms, prev);
    prev = r.total_ms;
  }
  // Bigger model on the same hardware is slower.
  cfg.batch = 8;
  const double t13 = SimulateInference(cfg).total_ms;
  cfg.model = Opt30B();
  cfg.num_gpus = 4;
  const InferenceReport r30 = SimulateInference(cfg);
  ASSERT_FALSE(r30.oom);
  // Per-GPU bandwidth doubled but the model is >2x larger.
  EXPECT_GT(r30.total_ms, t13 * 0.9);
}

// Throughput (tokens/s) improves with batch even as latency grows.
TEST(CostModelPropertiesTest, BatchingImprovesThroughput) {
  EngineConfig cfg;
  cfg.model = Opt13B();
  cfg.framework = Framework::kSpInfer;
  cfg.device = Rtx4090();
  cfg.num_gpus = 1;
  cfg.input_len = 64;
  cfg.output_len = 64;
  cfg.sparsity = 0.6;
  double prev_tps = 0.0;
  for (int64_t batch : {1, 8, 32}) {
    cfg.batch = batch;
    const InferenceReport r = SimulateInference(cfg);
    ASSERT_FALSE(r.oom) << batch;
    EXPECT_GT(r.tokens_per_second, prev_tps) << batch;
    prev_tps = r.tokens_per_second;
  }
}

// Fig. 14 memory patterns on the A6000 platform: OPT-66B dense needs 4
// GPUs; SpInfer serves it on 2.
TEST(CostModelPropertiesTest, Opt66BOnA6000MemoryPattern) {
  EngineConfig cfg;
  cfg.model = Opt66B();
  cfg.device = A6000();
  cfg.batch = 8;
  cfg.input_len = 128;
  cfg.output_len = 128;
  cfg.sparsity = 0.6;
  cfg.num_gpus = 2;
  cfg.framework = Framework::kFasterTransformer;
  EXPECT_TRUE(SimulateInference(cfg).oom);  // 132 GB dense on 96 GB
  cfg.framework = Framework::kSpInfer;
  EXPECT_FALSE(SimulateInference(cfg).oom);
  cfg.framework = Framework::kFasterTransformer;
  cfg.num_gpus = 4;
  EXPECT_FALSE(SimulateInference(cfg).oom);
}

}  // namespace
}  // namespace spinfer
