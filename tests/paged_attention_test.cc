// Differential suite for the fused, batched paged-attention decode kernel.
//
// The load-bearing property is bit-identity with the retained scalar
// reference (PagedAttentionDecodeReference): TinyTransformer's serving path
// routes every decode and chunk column through the batched kernel, so any
// bit of divergence would change token streams and break the engine's
// batched-vs-single and decode-vs-Generate contracts. The fusion, the SIMD
// variants, and the thread fan-out are all required to reschedule — never
// reorder — each output element's accumulation chain, so every comparison
// here is exact (ASSERT_EQ on float bits), not tolerance-based.
#include "src/llm/paged_attention.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/llm/kv_allocator.h"
#include "src/llm/tiny_transformer.h"
#include "src/util/cpu_features.h"
#include "src/util/random.h"
#include "src/util/thread_pool.h"

namespace spinfer {
namespace {

void ExpectBitIdentical(const FloatMatrix& a, const FloatMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (int64_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i])
        << "first mismatch at flat index " << i << " of " << a.size();
  }
}

// A one-layer cache with `seqs` sequences of the given context lengths,
// filled with deterministic pseudo-random K/V rows.
PagedKvCache MakeFilledCache(int64_t kv_dim, const std::vector<int64_t>& ctxs,
                             uint64_t seed, int64_t block_tokens = 16) {
  PagedKvCacheConfig cfg;
  cfg.layers = 1;
  cfg.kv_dim = kv_dim;
  cfg.block_tokens = block_tokens;
  int64_t blocks = static_cast<int64_t>(ctxs.size());  // slack
  for (const int64_t ctx : ctxs) {
    blocks += (ctx + block_tokens - 1) / block_tokens;
  }
  cfg.num_blocks = blocks;
  PagedKvCache cache(cfg);
  Rng rng(seed);
  for (size_t s = 0; s < ctxs.size(); ++s) {
    const int64_t id = static_cast<int64_t>(s);
    EXPECT_TRUE(cache.AddSequence(id, ctxs[s]));
    for (int64_t t = 0; t < ctxs[s]; ++t) {
      float* k = cache.KRow(0, id, t);
      float* v = cache.VRow(0, id, t);
      for (int64_t r = 0; r < kv_dim; ++r) {
        k[r] = rng.Uniform(-1.0f, 1.0f);
        v[r] = rng.Uniform(-1.0f, 1.0f);
      }
    }
  }
  return cache;
}

FloatMatrix RandomPanel(int64_t rows, int64_t cols, uint64_t seed) {
  FloatMatrix m(rows, cols);
  Rng rng(seed);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng.Uniform(-1.0f, 1.0f);
  }
  return m;
}

// Runs the reference per item into a fresh matrix: the ground truth every
// batched result in this file is compared against.
FloatMatrix ReferenceBatch(const PagedKvCache& cache, int64_t heads,
                           int64_t kv_heads, const FloatMatrix& q,
                           const std::vector<PagedAttentionItem>& items) {
  FloatMatrix out(q.rows(), q.cols());
  out.Fill(0.0f);
  std::vector<float> scores;
  for (const PagedAttentionItem& it : items) {
    PagedAttentionDecodeReference(cache, /*layer=*/0, it.seq_id, heads,
                                  kv_heads, q, it.col, &out, &scores,
                                  it.context);
  }
  return out;
}

// Ragged contexts deliberately off block (16) and SIMD-group (8) boundaries:
// 1 and 5 inside one block, 16 exactly one block, 17/100 with ragged tails.
const std::vector<int64_t> kRaggedCtxs = {1, 5, 16, 17, 100};

TEST(PagedAttentionTest, FusedMatchesReferenceOnRaggedContexts) {
  constexpr int64_t kHeads = 4, kHd = 16;
  PagedKvCache cache = MakeFilledCache(kHeads * kHd, kRaggedCtxs, 11);
  const FloatMatrix q = RandomPanel(
      kHeads * kHd, static_cast<int64_t>(kRaggedCtxs.size()), 12);
  std::vector<PagedAttentionItem> items;
  for (size_t s = 0; s < kRaggedCtxs.size(); ++s) {
    items.push_back({static_cast<int64_t>(s), static_cast<int64_t>(s), -1});
  }
  const FloatMatrix ref = ReferenceBatch(cache, kHeads, kHeads, q, items);

  FloatMatrix out(q.rows(), q.cols());
  PagedAttentionScratch scratch;
  PagedAttentionDecodeBatch(cache, /*layer=*/0, kHeads, kHeads, q, items,
                            &out, &scratch);
  ExpectBitIdentical(out, ref);
}

// head_dim 20 defeats the AVX2 QK fast path (which needs hd % 8 == 0), so
// the dispatched variant takes its scalar fallback — the speed-only knob
// must not change bits.
TEST(PagedAttentionTest, OddHeadDimMatchesReference) {
  constexpr int64_t kHeads = 3, kHd = 20;
  PagedKvCache cache = MakeFilledCache(kHeads * kHd, {33, 7}, 13);
  const FloatMatrix q = RandomPanel(kHeads * kHd, 2, 14);
  const std::vector<PagedAttentionItem> items = {{0, 0, -1}, {1, 1, -1}};
  const FloatMatrix ref = ReferenceBatch(cache, kHeads, kHeads, q, items);

  FloatMatrix out(q.rows(), q.cols());
  PagedAttentionScratch scratch;
  PagedAttentionDecodeBatch(cache, /*layer=*/0, kHeads, kHeads, q, items,
                            &out, &scratch);
  ExpectBitIdentical(out, ref);
}

TEST(PagedAttentionTest, ChunkHorizonMatchesReference) {
  constexpr int64_t kHeads = 4, kHd = 16;
  PagedKvCache cache = MakeFilledCache(kHeads * kHd, {64}, 15);
  // Four queries over the same sequence at explicit horizons, as chunked
  // prefill issues them: position p attends slots [0, p] while slots past p
  // are already written.
  const std::vector<PagedAttentionItem> items = {
      {0, 0, 1}, {0, 1, 17}, {0, 2, 40}, {0, 3, 64}};
  const FloatMatrix q = RandomPanel(kHeads * kHd, 4, 16);
  const FloatMatrix ref = ReferenceBatch(cache, kHeads, kHeads, q, items);

  FloatMatrix out(q.rows(), q.cols());
  PagedAttentionScratch scratch;
  PagedAttentionDecodeBatch(cache, /*layer=*/0, kHeads, kHeads, q, items,
                            &out, &scratch);
  ExpectBitIdentical(out, ref);
}

TEST(PagedAttentionTest, SimdVariantsBitIdentical) {
  if (!PagedAttentionVariantAvailable(CpuSpmmVariant::kAvx2)) {
    GTEST_SKIP() << "AVX2 paged-attention variant unavailable on this machine";
  }
  constexpr int64_t kHeads = 8, kHd = 32;
  PagedKvCache cache = MakeFilledCache(kHeads * kHd, {256, 31, 48}, 17);
  const FloatMatrix q = RandomPanel(kHeads * kHd, 3, 18);
  const std::vector<PagedAttentionItem> items = {
      {0, 0, -1}, {1, 1, -1}, {2, 2, -1}};

  FloatMatrix portable(q.rows(), q.cols());
  FloatMatrix avx2(q.rows(), q.cols());
  PagedAttentionScratch scratch;
  PagedAttentionDecodeBatchVariant(cache, /*layer=*/0, kHeads, kHeads, q,
                                   items, &portable, &scratch,
                                   CpuSpmmVariant::kPortable);
  PagedAttentionDecodeBatchVariant(cache, /*layer=*/0, kHeads, kHeads, q,
                                   items, &avx2, &scratch,
                                   CpuSpmmVariant::kAvx2);
  ExpectBitIdentical(avx2, portable);
}

TEST(PagedAttentionTest, ThreadCountsBitIdentical) {
  constexpr int64_t kHeads = 8, kHd = 16;
  PagedKvCache cache = MakeFilledCache(kHeads * kHd, {100, 37, 64, 5}, 19);
  const FloatMatrix q = RandomPanel(kHeads * kHd, 4, 20);
  std::vector<PagedAttentionItem> items;
  for (int64_t s = 0; s < 4; ++s) {
    items.push_back({s, s, -1});
  }

  ThreadPool::SetGlobalThreads(1);
  FloatMatrix base(q.rows(), q.cols());
  PagedAttentionScratch scratch;
  PagedAttentionDecodeBatch(cache, /*layer=*/0, kHeads, kHeads, q, items,
                            &base, &scratch);
  for (const int threads : {2, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    FloatMatrix out(q.rows(), q.cols());
    PagedAttentionDecodeBatch(cache, /*layer=*/0, kHeads, kHeads, q, items,
                              &out, &scratch);
    ExpectBitIdentical(out, base);
  }
  ThreadPool::SetGlobalThreads(0);
}

// GQA: 8 query heads sharing 2 kv heads must equal (a) the GQA-aware
// reference on the same cache and (b) classic MHA over a cache where each kv
// head's rows are replicated across its group — adoption of a shared K/V row
// is exactly replication.
TEST(PagedAttentionTest, GqaMatchesReferenceAndReplicatedMha) {
  constexpr int64_t kHeads = 8, kKvHeads = 2, kHd = 16;
  constexpr int64_t kCtx = 53;
  PagedKvCache gqa_cache =
      MakeFilledCache(kKvHeads * kHd, {kCtx}, 21);
  const FloatMatrix q = RandomPanel(kHeads * kHd, 1, 22);
  const std::vector<PagedAttentionItem> items = {{0, 0, -1}};
  const FloatMatrix ref = ReferenceBatch(gqa_cache, kHeads, kKvHeads, q, items);

  FloatMatrix out(q.rows(), q.cols());
  PagedAttentionScratch scratch;
  PagedAttentionDecodeBatch(gqa_cache, /*layer=*/0, kHeads, kKvHeads, q,
                            items, &out, &scratch);
  ExpectBitIdentical(out, ref);

  // Replicated-MHA cross-check: kv head g's rows copied to all heads of its
  // group, then attended as plain MHA.
  PagedKvCacheConfig mha_cfg;
  mha_cfg.layers = 1;
  mha_cfg.kv_dim = kHeads * kHd;
  mha_cfg.block_tokens = 16;
  mha_cfg.num_blocks = 8;
  PagedKvCache mha_cache(mha_cfg);
  ASSERT_TRUE(mha_cache.AddSequence(0, kCtx));
  constexpr int64_t kGroup = kHeads / kKvHeads;
  for (int64_t t = 0; t < kCtx; ++t) {
    const float* gk = gqa_cache.KRow(0, 0, t);
    const float* gv = gqa_cache.VRow(0, 0, t);
    float* mk = mha_cache.KRow(0, 0, t);
    float* mv = mha_cache.VRow(0, 0, t);
    for (int64_t h = 0; h < kHeads; ++h) {
      for (int64_t r = 0; r < kHd; ++r) {
        mk[h * kHd + r] = gk[(h / kGroup) * kHd + r];
        mv[h * kHd + r] = gv[(h / kGroup) * kHd + r];
      }
    }
  }
  FloatMatrix mha_out(q.rows(), q.cols());
  PagedAttentionDecodeBatch(mha_cache, /*layer=*/0, kHeads, kHeads, q, items,
                            &mha_out, &scratch);
  ExpectBitIdentical(mha_out, out);
}

TEST(PagedAttentionTest, EmptyContextIsCheckFailure) {
  constexpr int64_t kHeads = 2, kHd = 8;
  PagedKvCache cache = MakeFilledCache(kHeads * kHd, {4}, 23);
  const FloatMatrix q = RandomPanel(kHeads * kHd, 1, 24);
  FloatMatrix out(q.rows(), q.cols());
  PagedAttentionScratch scratch;
  std::vector<float> scores;
  EXPECT_DEATH(PagedAttentionDecodeReference(cache, 0, /*seq_id=*/0, kHeads,
                                             kHeads, q, 0, &out, &scores,
                                             /*context=*/0),
               "no cached tokens");
  const std::vector<PagedAttentionItem> items = {{0, 0, 0}};
  EXPECT_DEATH(PagedAttentionDecodeBatch(cache, 0, kHeads, kHeads, q, items,
                                         &out, &scratch),
               "no cached tokens");
}

// Warmed scratch stops allocating: re-running any seen (or smaller) shape
// leaves the grow count unchanged, and growing the context by single tokens
// amortizes geometrically instead of reallocating per step.
TEST(PagedAttentionTest, WarmScratchStopsGrowing) {
  constexpr int64_t kHeads = 4, kHd = 16;
  PagedKvCache cache = MakeFilledCache(kHeads * kHd, {128, 128}, 25);
  const FloatMatrix q = RandomPanel(kHeads * kHd, 2, 26);
  FloatMatrix out(q.rows(), q.cols());
  PagedAttentionScratch scratch;
  const std::vector<PagedAttentionItem> warm = {{0, 0, -1}, {1, 1, -1}};
  PagedAttentionDecodeBatch(cache, 0, kHeads, kHeads, q, warm, &out, &scratch);
  const int64_t warm_grows = scratch.grow_count();
  for (int64_t ctx = 100; ctx <= 128; ++ctx) {
    const std::vector<PagedAttentionItem> items = {{0, 0, ctx}, {1, 1, ctx}};
    PagedAttentionDecodeBatch(cache, 0, kHeads, kHeads, q, items, &out,
                              &scratch);
  }
  EXPECT_EQ(scratch.grow_count(), warm_grows);
}

// The serving-path contract the fusion must not disturb: DecodeStep token
// streams over the paged cache still match the full-recompute Generate path
// bit for bit (Generate never touches the batched kernel).
TEST(PagedAttentionTest, ServingDecodeStreamMatchesGenerate) {
  TinyConfig cfg;
  cfg.vocab = 64;
  cfg.hidden = 64;
  cfg.layers = 2;
  cfg.heads = 4;
  cfg.ffn = 128;
  cfg.max_seq = 48;
  TinyTransformer model(cfg, 31);
  const std::vector<int32_t> prompt = {3, 14, 15, 9, 2, 6};
  constexpr int kSteps = 8;
  const std::vector<int32_t> expect =
      model.Generate(prompt, kSteps, MatmulBackend::kTcaBmeCpu);

  PagedKvCache cache(model.KvCacheConfig(/*block_tokens=*/16,
                                         /*num_blocks=*/8));
  ASSERT_TRUE(cache.AddSequence(0, static_cast<int64_t>(prompt.size())));
  const FloatMatrix logits =
      model.Prefill(prompt, MatmulBackend::kTcaBmeCpu, &cache, 0);
  std::vector<int32_t> tokens = prompt;
  tokens.push_back(
      GreedyToken(logits, static_cast<int64_t>(prompt.size()) - 1));
  std::vector<int32_t> next;
  for (int step = 1; step < kSteps; ++step) {
    model.DecodeStep({0}, {tokens.back()}, MatmulBackend::kTcaBmeCpu, &cache,
                     &next);
    tokens.push_back(next[0]);
  }
  EXPECT_EQ(tokens, expect);
}

}  // namespace
}  // namespace spinfer
