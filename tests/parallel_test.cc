#include "src/llm/parallel.h"

#include <gtest/gtest.h>

namespace spinfer {
namespace {

TEST(ParallelTest, SingleGpuIsFree) {
  EXPECT_DOUBLE_EQ(AllReduceTimeUs(1 << 20, 1, Rtx4090()), 0.0);
  EXPECT_DOUBLE_EQ(LayerCommTimeUs(128, 5120, 1, Rtx4090()), 0.0);
}

// Zero traffic moves nothing: a zero-byte all-reduce and a zero-token layer
// must not be charged the ring's per-step latency even on multi-GPU rings.
// (A sharded engine step with an empty panel prices exactly 0 comm.)
TEST(ParallelTest, ZeroBytesIsFreeOnAnyRing) {
  for (int gpus : {2, 4, 8}) {
    EXPECT_DOUBLE_EQ(AllReduceTimeUs(0, gpus, Rtx4090()), 0.0);
    EXPECT_DOUBLE_EQ(LayerCommTimeUs(0, 5120, gpus, Rtx4090()), 0.0);
  }
}

TEST(ParallelTest, RingVolumeAndLatency) {
  const DeviceSpec dev = Rtx4090();
  const uint64_t bytes = 10'000'000;
  const double t2 = AllReduceTimeUs(bytes, 2, dev);
  // 2 GPUs: volume = 1.0 * bytes, 2 latency steps.
  EXPECT_NEAR(t2, 2 * dev.link_latency_us + 1e7 / (30.5 * 1e3), 1.0);
  const double t4 = AllReduceTimeUs(bytes, 4, dev);
  EXPECT_GT(t4, t2);  // more volume (1.5x) and steps
}

TEST(ParallelTest, NvlinkMuchFasterThanPcie) {
  const double pcie = AllReduceTimeUs(10'000'000, 2, Rtx4090());
  const double nvlink = AllReduceTimeUs(10'000'000, 2, A6000());
  EXPECT_LT(nvlink, pcie / 1.5);
}

TEST(ParallelTest, LayerCommIsTwoAllReduces) {
  const DeviceSpec dev = Rtx4090();
  const int64_t tokens = 32;
  const int64_t hidden = 5120;
  EXPECT_DOUBLE_EQ(LayerCommTimeUs(tokens, hidden, 2, dev),
                   2.0 * AllReduceTimeUs(2ull * tokens * hidden, 2, dev));
}

TEST(ParallelTest, CommScalesWithTokens) {
  const DeviceSpec dev = Rtx4090();
  EXPECT_GT(LayerCommTimeUs(4096, 5120, 2, dev), LayerCommTimeUs(32, 5120, 2, dev));
}

}  // namespace
}  // namespace spinfer
