// Windowed SLO tracker (src/obs/slo_tracker).
//
// The property that matters: the tracker reports percentiles over *recent*
// traffic. Samples must (a) be visible immediately, (b) survive for at least
// window - window/epochs iterations, and (c) be gone after the full window
// has rotated past them — a regression buried by lifetime-cumulative
// histograms is the failure mode this type exists to prevent. Publication
// lands in named gauges so the Prometheus exporter picks the SLO surface up
// with no extra wiring.
#include <gtest/gtest.h>

#include <string>

#include "src/obs/metrics.h"
#include "src/obs/slo_tracker.h"

namespace spinfer {
namespace {

obs::SloTrackerConfig SmallWindow() {
  obs::SloTrackerConfig cfg;
  cfg.window_iters = 8;  // 4 epochs x 2 iterations
  cfg.epochs = 4;
  return cfg;
}

TEST(SloTrackerTest, SamplesVisibleImmediatelyAndQuantilesTrack) {
  obs::SloTracker slo(SmallWindow());
  for (int i = 0; i < 100; ++i) {
    slo.RecordTtftMs(10.0);
    slo.RecordTbtMs(1.0);
  }
  EXPECT_EQ(slo.WindowTtftCount(), 100u);
  EXPECT_EQ(slo.WindowTbtCount(), 100u);
  EXPECT_NEAR(slo.TtftQuantileMs(0.5), 10.0, 10.0 * 0.5);
  EXPECT_NEAR(slo.TbtQuantileMs(0.5), 1.0, 1.0 * 0.5);
}

TEST(SloTrackerTest, OldSamplesExpireAfterFullWindowRotation) {
  obs::SloTracker slo(SmallWindow());
  slo.RecordTtftMs(500.0);  // one slow request at the start
  // After < window - epoch_len iterations the sample must still be counted.
  for (int i = 0; i < 5; ++i) {
    slo.EndIteration(0.0, nullptr);
  }
  EXPECT_EQ(slo.WindowTtftCount(), 1u);
  // After the remaining rotations of the full window it must be gone.
  for (int i = 0; i < 8; ++i) {
    slo.EndIteration(0.0, nullptr);
  }
  EXPECT_EQ(slo.WindowTtftCount(), 0u);
  EXPECT_EQ(slo.TtftQuantileMs(0.99), 0.0);
}

TEST(SloTrackerTest, WindowedP99RecoversAfterRegressionPasses) {
  obs::SloTracker slo(SmallWindow());
  // A burst of terrible TTFTs...
  for (int i = 0; i < 50; ++i) {
    slo.RecordTtftMs(400.0);
  }
  EXPECT_GT(slo.TtftQuantileMs(0.99), 100.0);
  // ...then a full window of healthy traffic: the p99 must recover, which a
  // cumulative histogram would not do.
  for (int iter = 0; iter < 8; ++iter) {
    for (int i = 0; i < 10; ++i) {
      slo.RecordTtftMs(5.0);
    }
    slo.EndIteration(0.0, nullptr);
  }
  EXPECT_LT(slo.TtftQuantileMs(0.99), 50.0);
}

TEST(SloTrackerTest, PublishesGaugesIntoRegistry) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.ResetForTest();
  obs::SloTracker slo(SmallWindow());
  for (int i = 0; i < 20; ++i) {
    slo.RecordTtftMs(10.0);
    slo.RecordTbtMs(2.0);
  }
  slo.EndIteration(0.75, &reg);
  EXPECT_NEAR(reg.GetGauge("srv.slo.kv_occupancy")->Value(), 0.75, 1e-12);
  EXPECT_EQ(reg.GetGauge("srv.slo.window_ttft_count")->Value(), 20.0);
  EXPECT_EQ(reg.GetGauge("srv.slo.window_tbt_count")->Value(), 20.0);
  EXPECT_GT(reg.GetGauge("srv.slo.ttft_p99_ms")->Value(), 0.0);
  EXPECT_GT(reg.GetGauge("srv.slo.tbt_p50_ms")->Value(), 0.0);
  // Published values match the tracker's own window queries.
  EXPECT_NEAR(reg.GetGauge("srv.slo.ttft_p50_ms")->Value(),
              slo.TtftQuantileMs(0.50), 1e-12);
  reg.ResetForTest();
}

TEST(SloTrackerTest, ToStringSummarizesBothSeries) {
  obs::SloTracker slo(SmallWindow());
  slo.RecordTtftMs(10.0);
  slo.RecordTbtMs(1.0);
  const std::string s = slo.ToString();
  EXPECT_NE(s.find("ttft{count=1"), std::string::npos) << s;
  EXPECT_NE(s.find("tbt{count=1"), std::string::npos) << s;
}

TEST(SloTrackerTest, DegenerateConfigsAreClamped) {
  obs::SloTrackerConfig cfg;
  cfg.window_iters = 0;
  cfg.epochs = 0;
  obs::SloTracker slo(cfg);  // must not divide by zero or allocate nothing
  slo.RecordTtftMs(1.0);
  slo.EndIteration(0.0, nullptr);
  EXPECT_GE(slo.iterations(), 1);
}

}  // namespace
}  // namespace spinfer
