#include "src/llm/memory_plan.h"

#include <gtest/gtest.h>

namespace spinfer {
namespace {

// Paper §5.2 memory results, reproduced as assertions.

TEST(MemoryPlanTest, DenseOpt13BNeedsTwo4090s) {
  const DeviceSpec dev = Rtx4090();
  const MemoryPlan one =
      PlanMemory(Opt13B(), WeightFormat::kDense, 0.0, 16, 256 + 128, 1, dev);
  EXPECT_FALSE(one.Fits()) << one.ToString();
  const MemoryPlan two =
      PlanMemory(Opt13B(), WeightFormat::kDense, 0.0, 16, 256 + 128, 2, dev);
  EXPECT_TRUE(two.Fits()) << two.ToString();
}

TEST(MemoryPlanTest, SparseOpt13BFitsOne4090) {
  // The paper's headline memory claim: 60%-sparse OPT-13B runs on a single
  // 24 GB RTX4090 under SpInfer.
  const DeviceSpec dev = Rtx4090();
  const MemoryPlan plan =
      PlanMemory(Opt13B(), WeightFormat::kTcaBme, 0.6, 16, 256 + 128, 1, dev);
  EXPECT_TRUE(plan.Fits()) << plan.ToString();
}

TEST(MemoryPlanTest, SpInferOpt13BSupports1024TokensAtBatch8) {
  // "With OPT-13B on a single RTX4090 and batch 8, SpInfer supports up to
  //  1024 output tokens, whereas Flash-LLM is limited to 256."
  const DeviceSpec dev = Rtx4090();
  const MemoryPlan spinfer =
      PlanMemory(Opt13B(), WeightFormat::kTcaBme, 0.6, 8, 1024 + 128, 1, dev);
  EXPECT_TRUE(spinfer.Fits()) << spinfer.ToString();
  const MemoryPlan flash_1024 =
      PlanMemory(Opt13B(), WeightFormat::kTiledCsl, 0.6, 8, 1024 + 128, 1, dev);
  EXPECT_FALSE(flash_1024.Fits()) << flash_1024.ToString();
  const MemoryPlan flash_256 =
      PlanMemory(Opt13B(), WeightFormat::kTiledCsl, 0.6, 8, 256 + 128, 1, dev);
  EXPECT_TRUE(flash_256.Fits()) << flash_256.ToString();
}

TEST(MemoryPlanTest, FlashLlmOpt30BOomOnTwo4090s) {
  // "With OPT-30B on 2 RTX4090 GPUs, Flash-LLM encounters OOM across all
  //  batch sizes and output lengths, while SpInfer handles up to 512 tokens
  //  at batch 16."
  const DeviceSpec dev = Rtx4090();
  for (int64_t batch : {8, 16, 32}) {
    const MemoryPlan flash =
        PlanMemory(Opt30B(), WeightFormat::kTiledCsl, 0.6, batch, 64 + 128, 2, dev);
    EXPECT_FALSE(flash.Fits()) << "batch=" << batch << " " << flash.ToString();
  }
  const MemoryPlan spinfer =
      PlanMemory(Opt30B(), WeightFormat::kTcaBme, 0.6, 16, 512 + 128, 2, dev);
  EXPECT_TRUE(spinfer.Fits()) << spinfer.ToString();
}

TEST(MemoryPlanTest, KvCacheGrowsWithContext) {
  const DeviceSpec dev = Rtx4090();
  const MemoryPlan p256 =
      PlanMemory(Opt13B(), WeightFormat::kTcaBme, 0.6, 8, 256, 1, dev);
  const MemoryPlan p1024 =
      PlanMemory(Opt13B(), WeightFormat::kTcaBme, 0.6, 8, 1024, 1, dev);
  EXPECT_GT(p1024.kv_cache_bytes, p256.kv_cache_bytes);
  EXPECT_EQ(p1024.weight_bytes, p256.weight_bytes);
}

TEST(MemoryPlanTest, WeightReductionNear47Percent) {
  // Paper: OPT-13B inference memory drops 47.5% (27.4 -> 14.4 GB) at 60%
  // sparsity. Compare total footprints at the paper's configuration.
  const DeviceSpec dev = Rtx4090();
  const MemoryPlan dense =
      PlanMemory(Opt13B(), WeightFormat::kDense, 0.0, 16, 256 + 128, 2, dev);
  const MemoryPlan sparse =
      PlanMemory(Opt13B(), WeightFormat::kTcaBme, 0.6, 16, 256 + 128, 2, dev);
  const double reduction =
      1.0 - static_cast<double>(sparse.weight_bytes) /
                static_cast<double>(dense.weight_bytes);
  EXPECT_NEAR(reduction, 0.52, 0.08);
}

}  // namespace
}  // namespace spinfer
