// Enforces the observability determinism contract (src/obs/trace.h): turning
// tracing on must not change a single bit of any instrumented computation —
// CpuSpmm outputs, RunEncoded outputs, and the simulator's PerfCounters are
// identical with tracing off, on, and on-at-width-2.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/core/cpu_backend.h"
#include "src/core/spinfer_kernel.h"
#include "src/format/tca_bme.h"
#include "src/gpusim/perf_counters.h"
#include "src/llm/tiny_transformer.h"
#include "src/numeric/matrix.h"
#include "src/obs/trace.h"
#include "src/pruning/magnitude.h"
#include "src/util/random.h"
#include "src/util/thread_pool.h"

namespace spinfer {
namespace {

// Bitwise equality, not EXPECT_FLOAT_EQ: the contract is identity, and
// byte-compare also distinguishes -0.0f from 0.0f.
void ExpectBitIdentical(const FloatMatrix& a, const FloatMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.size()) * sizeof(float)),
            0);
}

class BitIdentityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::Global().Reset();
    ThreadPool::SetGlobalThreads(1);
  }
  void TearDown() override {
    obs::Tracer::Global().Stop();
    obs::Tracer::Global().Reset();
    ThreadPool::SetGlobalThreads(1);
  }
};

TEST_F(BitIdentityTest, CpuSpmmOutputsUnchangedByTracing) {
  Rng rng(77);
  const HalfMatrix w = HalfMatrix::RandomSparse(256, 256, 0.6, rng);
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w);
  const HalfMatrix x8 = HalfMatrix::Random(256, 8, rng);
  const HalfMatrix x64 = HalfMatrix::Random(256, 64, rng);

  SpmmWorkspace ws;
  FloatMatrix off8, off64;
  CpuSpmmInto(enc, x8, &ws, &off8);
  CpuSpmmInto(enc, x64, &ws, &off64);

  obs::Tracer::Global().Start();
  FloatMatrix on8, on64;
  CpuSpmmInto(enc, x8, &ws, &on8);
  CpuSpmmInto(enc, x64, &ws, &on64);
  // Width 2 exercises the traced ParallelFor/worker path as well.
  ThreadPool::SetGlobalThreads(2);
  FloatMatrix on64_t2;
  CpuSpmmInto(enc, x64, &ws, &on64_t2);
  obs::Tracer::Global().Stop();

  ExpectBitIdentical(off8, on8);
  ExpectBitIdentical(off64, on64);
  ExpectBitIdentical(off64, on64_t2);
  // The traced runs must actually have recorded spans, or this test proves
  // nothing.
  EXPECT_FALSE(obs::Tracer::Global().Drain().empty());
}

TEST_F(BitIdentityTest, RunEncodedOutputsAndCountersUnchangedByTracing) {
  Rng rng(78);
  const HalfMatrix w = HalfMatrix::RandomSparse(128, 128, 0.6, rng);
  const HalfMatrix x = HalfMatrix::Random(128, 16, rng);
  const SpInferSpmmKernel kernel;
  const TcaBmeMatrix enc = TcaBmeMatrix::Encode(w, kernel.config().format);

  PerfCounters counters_off;
  const FloatMatrix out_off = kernel.RunEncoded(enc, x, &counters_off);

  obs::Tracer::Global().Start();
  PerfCounters counters_on;
  const FloatMatrix out_on = kernel.RunEncoded(enc, x, &counters_on);
  obs::Tracer::Global().Stop();

  ExpectBitIdentical(out_off, out_on);
  EXPECT_EQ(counters_off, counters_on);
  EXPECT_FALSE(obs::Tracer::Global().Drain().empty());
}

TEST_F(BitIdentityTest, TinyTransformerLogitsUnchangedByTracing) {
  TinyTransformer model(TinyConfig{}, 99);
  model.PruneWeights(MagnitudePruner(), 0.6);
  std::vector<int32_t> tokens;
  for (int i = 0; i < 12; ++i) {
    tokens.push_back(static_cast<int32_t>((i * 11 + 5) % model.config().vocab));
  }
  const FloatMatrix off = model.Forward(tokens, MatmulBackend::kTcaBmeCpu);

  obs::Tracer::Global().Start();
  const FloatMatrix on = model.Forward(tokens, MatmulBackend::kTcaBmeCpu);
  obs::Tracer::Global().Stop();

  ExpectBitIdentical(off, on);
  EXPECT_FALSE(obs::Tracer::Global().Drain().empty());
}

}  // namespace
}  // namespace spinfer
