// Property/fuzz tests for the paged KV cache: seeded random
// alloc/append/truncate/free sequences checked against a shadow model.
//
// Invariants enforced after every operation:
//   * Conservation: live blocks + free blocks == total blocks.
//   * Isolation: no block belongs to two live sequences (or twice to one).
//   * Token counts match the shadow model exactly; failed operations change
//     nothing.
//   * Data integrity: every live K/V row still holds the unique pattern
//     written when its token was added — block recycling never lets one
//     sequence's writes reach another's rows.
//   * Full reclamation: draining all sequences returns every block.
#include "src/llm/kv_allocator.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "src/util/random.h"

namespace spinfer {
namespace {

PagedKvCacheConfig SmallCache() {
  PagedKvCacheConfig cfg;
  cfg.layers = 2;
  cfg.kv_dim = 4;
  cfg.block_tokens = 4;
  cfg.num_blocks = 24;
  return cfg;
}

// Unique, exactly-representable float per (seq, token, layer, element); V
// rows get +0.5 so K/V mixups are caught too.
float PatternK(int64_t seq, int64_t token, int64_t layer, int64_t r) {
  return static_cast<float>(((seq * 128 + token) * 2 + layer) * 4 + r);
}
float PatternV(int64_t seq, int64_t token, int64_t layer, int64_t r) {
  return PatternK(seq, token, layer, r) + 0.5f;
}

void FillToken(PagedKvCache* cache, int64_t seq, int64_t token) {
  for (int64_t layer = 0; layer < cache->config().layers; ++layer) {
    float* k = cache->KRow(layer, seq, token);
    float* v = cache->VRow(layer, seq, token);
    for (int64_t r = 0; r < cache->config().kv_dim; ++r) {
      k[r] = PatternK(seq, token, layer, r);
      v[r] = PatternV(seq, token, layer, r);
    }
  }
}

class Shadow {
 public:
  explicit Shadow(const PagedKvCacheConfig& cfg) : cfg_(cfg) {}

  void Check(const PagedKvCache& cache) const {
    // Conservation + per-sequence bookkeeping.
    int64_t live_blocks = 0;
    std::set<int32_t> seen;
    for (const auto& [seq, tokens] : tokens_) {
      ASSERT_EQ(cache.SequenceTokens(seq), tokens);
      const std::vector<int32_t>* blocks = cache.SequenceBlockList(seq);
      ASSERT_NE(blocks, nullptr);
      const int64_t expect_blocks =
          (tokens + cfg_.block_tokens - 1) / cfg_.block_tokens;
      ASSERT_EQ(static_cast<int64_t>(blocks->size()), expect_blocks);
      live_blocks += expect_blocks;
      for (int32_t b : *blocks) {
        ASSERT_GE(b, 0);
        ASSERT_LT(b, cfg_.num_blocks);
        // Isolation: first claim wins; a duplicate means two live sequences
        // (or two positions) share storage.
        ASSERT_TRUE(seen.insert(b).second)
            << "block " << b << " owned twice (seq " << seq << ")";
      }
    }
    ASSERT_EQ(cache.used_blocks(), live_blocks);
    ASSERT_EQ(cache.free_blocks(), cfg_.num_blocks - live_blocks);

    // Data integrity of every live row.
    for (const auto& [seq, tokens] : tokens_) {
      for (int64_t t = 0; t < tokens; ++t) {
        for (int64_t layer = 0; layer < cfg_.layers; ++layer) {
          const float* k = cache.KRow(layer, seq, t);
          const float* v = cache.VRow(layer, seq, t);
          for (int64_t r = 0; r < cfg_.kv_dim; ++r) {
            ASSERT_EQ(k[r], PatternK(seq, t, layer, r))
                << "seq=" << seq << " token=" << t << " layer=" << layer;
            ASSERT_EQ(v[r], PatternV(seq, t, layer, r))
                << "seq=" << seq << " token=" << t << " layer=" << layer;
          }
        }
      }
    }
  }

  std::map<int64_t, int64_t> tokens_;
  PagedKvCacheConfig cfg_;
};

TEST(PagedKvPropertyTest, RandomOpSequencesPreserveInvariants) {
  for (uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    const PagedKvCacheConfig cfg = SmallCache();
    PagedKvCache cache(cfg);
    Shadow shadow(cfg);
    Rng rng(seed);
    int64_t next_seq = 0;

    for (int op = 0; op < 400; ++op) {
      const uint64_t kind = rng.Below(10);
      if (kind < 3 || shadow.tokens_.empty()) {
        // AddSequence with a random prompt (may exceed the pool).
        const int64_t prompt = 1 + static_cast<int64_t>(rng.Below(30));
        const int64_t seq = next_seq++;
        const bool fits =
            (prompt + cfg.block_tokens - 1) / cfg.block_tokens <=
            cache.free_blocks();
        const bool ok = cache.AddSequence(seq, prompt);
        ASSERT_EQ(ok, fits) << "seed=" << seed << " op=" << op;
        if (ok) {
          shadow.tokens_[seq] = prompt;
          for (int64_t t = 0; t < prompt; ++t) {
            FillToken(&cache, seq, t);
          }
        }
      } else if (kind < 6) {
        // AppendToken on a random live sequence.
        auto it = shadow.tokens_.begin();
        std::advance(it, static_cast<int64_t>(
                             rng.Below(static_cast<uint64_t>(shadow.tokens_.size()))));
        const int64_t seq = it->first;
        const bool needs_block = it->second % cfg.block_tokens == 0;
        const bool fits = !needs_block || cache.free_blocks() > 0;
        const bool ok = cache.AppendToken(seq);
        ASSERT_EQ(ok, fits) << "seed=" << seed << " op=" << op;
        if (ok) {
          FillToken(&cache, seq, it->second);
          it->second += 1;
        } else {
          ASSERT_EQ(cache.SequenceTokens(seq), it->second);
        }
      } else if (kind < 8) {
        // TruncateSequence to a random smaller length (0 keeps the sequence
        // registered with no tokens is not supported; keep >= 1).
        auto it = shadow.tokens_.begin();
        std::advance(it, static_cast<int64_t>(
                             rng.Below(static_cast<uint64_t>(shadow.tokens_.size()))));
        const int64_t keep =
            1 + static_cast<int64_t>(rng.Below(static_cast<uint64_t>(it->second)));
        cache.TruncateSequence(it->first, keep);
        it->second = keep;
      } else {
        // RemoveSequence.
        auto it = shadow.tokens_.begin();
        std::advance(it, static_cast<int64_t>(
                             rng.Below(static_cast<uint64_t>(shadow.tokens_.size()))));
        cache.RemoveSequence(it->first);
        shadow.tokens_.erase(it);
      }
      shadow.Check(cache);
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }

    // Drain: every block comes back; no fragmentation is left behind.
    while (!shadow.tokens_.empty()) {
      cache.RemoveSequence(shadow.tokens_.begin()->first);
      shadow.tokens_.erase(shadow.tokens_.begin());
      shadow.Check(cache);
    }
    EXPECT_EQ(cache.free_blocks(), cfg.num_blocks);
    EXPECT_EQ(cache.used_blocks(), 0);
    EXPECT_EQ(cache.WastedTokenSlots(), 0);
  }
}

// Growth across a block boundary must not move data already written — the
// page table grows, the rows stay put.
TEST(PagedKvPropertyTest, AppendAcrossBlockBoundaryKeepsEarlierRows) {
  const PagedKvCacheConfig cfg = SmallCache();
  PagedKvCache cache(cfg);
  ASSERT_TRUE(cache.AddSequence(7, cfg.block_tokens));  // exactly one block
  for (int64_t t = 0; t < cfg.block_tokens; ++t) {
    FillToken(&cache, 7, t);
  }
  const float* before = cache.KRow(0, 7, 0);
  ASSERT_TRUE(cache.AppendToken(7));  // forces a second block
  FillToken(&cache, 7, cfg.block_tokens);
  EXPECT_EQ(cache.KRow(0, 7, 0), before);
  for (int64_t t = 0; t <= cfg.block_tokens; ++t) {
    for (int64_t layer = 0; layer < cfg.layers; ++layer) {
      for (int64_t r = 0; r < cfg.kv_dim; ++r) {
        EXPECT_EQ(cache.KRow(layer, 7, t)[r], PatternK(7, t, layer, r));
        EXPECT_EQ(cache.VRow(layer, 7, t)[r], PatternV(7, t, layer, r));
      }
    }
  }
}

}  // namespace
}  // namespace spinfer
