// Property/fuzz tests for the paged KV cache: seeded random
// alloc/append/truncate/free sequences checked against a shadow model.
//
// Invariants enforced after every operation:
//   * Conservation: live blocks + free blocks == total blocks.
//   * Isolation: no block belongs to two live sequences (or twice to one).
//   * Token counts match the shadow model exactly; failed operations change
//     nothing.
//   * Data integrity: every live K/V row still holds the unique pattern
//     written when its token was added — block recycling never lets one
//     sequence's writes reach another's rows.
//   * Full reclamation: draining all sequences returns every block.
#include "src/llm/kv_allocator.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "src/util/random.h"

namespace spinfer {
namespace {

PagedKvCacheConfig SmallCache() {
  PagedKvCacheConfig cfg;
  cfg.layers = 2;
  cfg.kv_dim = 4;
  cfg.block_tokens = 4;
  cfg.num_blocks = 24;
  return cfg;
}

// Unique, exactly-representable float per (seq, token, layer, element); V
// rows get +0.5 so K/V mixups are caught too.
float PatternK(int64_t seq, int64_t token, int64_t layer, int64_t r) {
  return static_cast<float>(((seq * 128 + token) * 2 + layer) * 4 + r);
}
float PatternV(int64_t seq, int64_t token, int64_t layer, int64_t r) {
  return PatternK(seq, token, layer, r) + 0.5f;
}

void FillToken(PagedKvCache* cache, int64_t seq, int64_t token) {
  for (int64_t layer = 0; layer < cache->config().layers; ++layer) {
    float* k = cache->KRow(layer, seq, token);
    float* v = cache->VRow(layer, seq, token);
    for (int64_t r = 0; r < cache->config().kv_dim; ++r) {
      k[r] = PatternK(seq, token, layer, r);
      v[r] = PatternV(seq, token, layer, r);
    }
  }
}

class Shadow {
 public:
  explicit Shadow(const PagedKvCacheConfig& cfg) : cfg_(cfg) {}

  void Check(const PagedKvCache& cache) const {
    // Conservation + per-sequence bookkeeping.
    int64_t live_blocks = 0;
    std::set<int32_t> seen;
    for (const auto& [seq, tokens] : tokens_) {
      ASSERT_EQ(cache.SequenceTokens(seq), tokens);
      const std::vector<int32_t>* blocks = cache.SequenceBlockList(seq);
      ASSERT_NE(blocks, nullptr);
      const int64_t expect_blocks =
          (tokens + cfg_.block_tokens - 1) / cfg_.block_tokens;
      ASSERT_EQ(static_cast<int64_t>(blocks->size()), expect_blocks);
      live_blocks += expect_blocks;
      for (int32_t b : *blocks) {
        ASSERT_GE(b, 0);
        ASSERT_LT(b, cfg_.num_blocks);
        // Isolation: first claim wins; a duplicate means two live sequences
        // (or two positions) share storage.
        ASSERT_TRUE(seen.insert(b).second)
            << "block " << b << " owned twice (seq " << seq << ")";
      }
    }
    ASSERT_EQ(cache.used_blocks(), live_blocks);
    ASSERT_EQ(cache.free_blocks(), cfg_.num_blocks - live_blocks);

    // Data integrity of every live row.
    for (const auto& [seq, tokens] : tokens_) {
      for (int64_t t = 0; t < tokens; ++t) {
        for (int64_t layer = 0; layer < cfg_.layers; ++layer) {
          const float* k = cache.KRow(layer, seq, t);
          const float* v = cache.VRow(layer, seq, t);
          for (int64_t r = 0; r < cfg_.kv_dim; ++r) {
            ASSERT_EQ(k[r], PatternK(seq, t, layer, r))
                << "seq=" << seq << " token=" << t << " layer=" << layer;
            ASSERT_EQ(v[r], PatternV(seq, t, layer, r))
                << "seq=" << seq << " token=" << t << " layer=" << layer;
          }
        }
      }
    }
  }

  std::map<int64_t, int64_t> tokens_;
  PagedKvCacheConfig cfg_;
};

TEST(PagedKvPropertyTest, RandomOpSequencesPreserveInvariants) {
  for (uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    const PagedKvCacheConfig cfg = SmallCache();
    PagedKvCache cache(cfg);
    Shadow shadow(cfg);
    Rng rng(seed);
    int64_t next_seq = 0;

    for (int op = 0; op < 400; ++op) {
      const uint64_t kind = rng.Below(10);
      if (kind < 3 || shadow.tokens_.empty()) {
        // AddSequence with a random prompt (may exceed the pool).
        const int64_t prompt = 1 + static_cast<int64_t>(rng.Below(30));
        const int64_t seq = next_seq++;
        const bool fits =
            (prompt + cfg.block_tokens - 1) / cfg.block_tokens <=
            cache.free_blocks();
        const bool ok = cache.AddSequence(seq, prompt);
        ASSERT_EQ(ok, fits) << "seed=" << seed << " op=" << op;
        if (ok) {
          shadow.tokens_[seq] = prompt;
          for (int64_t t = 0; t < prompt; ++t) {
            FillToken(&cache, seq, t);
          }
        }
      } else if (kind < 6) {
        // AppendToken on a random live sequence.
        auto it = shadow.tokens_.begin();
        std::advance(it, static_cast<int64_t>(
                             rng.Below(static_cast<uint64_t>(shadow.tokens_.size()))));
        const int64_t seq = it->first;
        const bool needs_block = it->second % cfg.block_tokens == 0;
        const bool fits = !needs_block || cache.free_blocks() > 0;
        const bool ok = cache.AppendToken(seq);
        ASSERT_EQ(ok, fits) << "seed=" << seed << " op=" << op;
        if (ok) {
          FillToken(&cache, seq, it->second);
          it->second += 1;
        } else {
          ASSERT_EQ(cache.SequenceTokens(seq), it->second);
        }
      } else if (kind < 8) {
        // TruncateSequence to a random smaller length (0 keeps the sequence
        // registered with no tokens is not supported; keep >= 1).
        auto it = shadow.tokens_.begin();
        std::advance(it, static_cast<int64_t>(
                             rng.Below(static_cast<uint64_t>(shadow.tokens_.size()))));
        const int64_t keep =
            1 + static_cast<int64_t>(rng.Below(static_cast<uint64_t>(it->second)));
        cache.TruncateSequence(it->first, keep);
        it->second = keep;
      } else {
        // RemoveSequence.
        auto it = shadow.tokens_.begin();
        std::advance(it, static_cast<int64_t>(
                             rng.Below(static_cast<uint64_t>(shadow.tokens_.size()))));
        cache.RemoveSequence(it->first);
        shadow.tokens_.erase(it);
      }
      shadow.Check(cache);
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }

    // Drain: every block comes back; no fragmentation is left behind.
    while (!shadow.tokens_.empty()) {
      cache.RemoveSequence(shadow.tokens_.begin()->first);
      shadow.tokens_.erase(shadow.tokens_.begin());
      shadow.Check(cache);
    }
    EXPECT_EQ(cache.free_blocks(), cfg.num_blocks);
    EXPECT_EQ(cache.used_blocks(), 0);
    EXPECT_EQ(cache.WastedTokenSlots(), 0);
  }
}

// --- Shared-prefix / refcount / copy-on-write fuzz --------------------------
//
// The sharing oracle needs content-derived patterns: a slot's expected value
// depends on WHICH token sits at WHICH position, never on which sequence
// wrote it — exactly the property that makes prefix blocks adoptable. On top
// of the original invariants (minus exclusive ownership, which sharing
// deliberately breaks) this checks:
//   * Refcount conservation: every block's refcount equals the number of
//     times live sequences hold it; distinct held blocks == used_blocks.
//   * No write-after-share without a copy: appending into a shared block
//     swaps in a fresh private block and bumps cow_copies; appending into a
//     private block never does.
//   * Full reclamation: draining returns every block and empties the index.

// Expected K/V for position `pos` holding token id `tok` (writer-agnostic).
float SharedPatternK(int32_t tok, int64_t pos, int64_t layer, int64_t r) {
  return static_cast<float>(((static_cast<int64_t>(tok) * 64 + pos) * 2 + layer) * 4 +
                            r);
}
float SharedPatternV(int32_t tok, int64_t pos, int64_t layer, int64_t r) {
  return SharedPatternK(tok, pos, layer, r) + 0.5f;
}

void FillSharedToken(PagedKvCache* cache, int64_t seq, int64_t pos, int32_t tok) {
  for (int64_t layer = 0; layer < cache->config().layers; ++layer) {
    float* k = cache->KRow(layer, seq, pos);
    float* v = cache->VRow(layer, seq, pos);
    for (int64_t r = 0; r < cache->config().kv_dim; ++r) {
      k[r] = SharedPatternK(tok, pos, layer, r);
      v[r] = SharedPatternV(tok, pos, layer, r);
    }
  }
}

// Shadow for the sharing oracle: per-sequence token content.
class SharedShadow {
 public:
  explicit SharedShadow(const PagedKvCacheConfig& cfg) : cfg_(cfg) {}

  void Check(const PagedKvCache& cache) const {
    // Refcount conservation: multiplicity across live sequences.
    std::map<int32_t, int32_t> holders;
    for (const auto& [seq, content] : content_) {
      const int64_t tokens = static_cast<int64_t>(content.size());
      ASSERT_EQ(cache.SequenceTokens(seq), tokens);
      const std::vector<int32_t>* blocks = cache.SequenceBlockList(seq);
      ASSERT_NE(blocks, nullptr);
      const int64_t expect_blocks =
          (tokens + cfg_.block_tokens - 1) / cfg_.block_tokens;
      ASSERT_EQ(static_cast<int64_t>(blocks->size()), expect_blocks);
      for (int32_t b : *blocks) {
        ASSERT_GE(b, 0);
        ASSERT_LT(b, cfg_.num_blocks);
        ++holders[b];
      }
    }
    int64_t distinct = 0;
    for (const auto& [b, count] : holders) {
      ASSERT_EQ(cache.BlockRefCount(b), count) << "block " << b;
      ++distinct;
    }
    for (int32_t b = 0; b < cfg_.num_blocks; ++b) {
      if (holders.find(b) == holders.end()) {
        ASSERT_EQ(cache.BlockRefCount(b), 0) << "leaked refcount on block " << b;
      }
    }
    ASSERT_EQ(cache.used_blocks(), distinct);
    ASSERT_EQ(cache.free_blocks(), cfg_.num_blocks - distinct);

    // Data integrity: every sequence reads its own content, bit for bit,
    // through whatever physical blocks (shared or private) back it.
    for (const auto& [seq, content] : content_) {
      for (int64_t t = 0; t < static_cast<int64_t>(content.size()); ++t) {
        for (int64_t layer = 0; layer < cfg_.layers; ++layer) {
          const float* k = cache.KRow(layer, seq, t);
          const float* v = cache.VRow(layer, seq, t);
          for (int64_t r = 0; r < cfg_.kv_dim; ++r) {
            ASSERT_EQ(k[r], SharedPatternK(content[static_cast<size_t>(t)], t,
                                           layer, r))
                << "seq=" << seq << " token=" << t << " layer=" << layer;
            ASSERT_EQ(v[r], SharedPatternV(content[static_cast<size_t>(t)], t,
                                           layer, r))
                << "seq=" << seq << " token=" << t << " layer=" << layer;
          }
        }
      }
    }
  }

  std::map<int64_t, std::vector<int32_t>> content_;
  PagedKvCacheConfig cfg_;
};

TEST(PagedKvPropertyTest, SharedBlockFuzzPreservesRefcountsAndData) {
  for (uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    const PagedKvCacheConfig cfg = SmallCache();
    PagedKvCache cache(cfg);
    SharedShadow shadow(cfg);
    Rng rng(seed);
    int64_t next_seq = 0;
    // A small pool of "system prompts" so arrivals actually share prefixes.
    std::vector<std::vector<int32_t>> bases;
    for (int64_t i = 0; i < 3; ++i) {
      std::vector<int32_t> base(static_cast<size_t>(5 + 4 * i));
      for (int32_t& tok : base) {
        tok = static_cast<int32_t>(rng.Below(50));
      }
      bases.push_back(std::move(base));
    }

    for (int op = 0; op < 300; ++op) {
      const uint64_t kind = rng.Below(10);
      if (kind < 3 || shadow.content_.empty()) {
        // Add with a shared-prefix match against the live index.
        std::vector<int32_t> prompt = bases[rng.Below(bases.size())];
        const int64_t tail = static_cast<int64_t>(rng.Below(7));
        for (int64_t i = 0; i < tail; ++i) {
          prompt.push_back(static_cast<int32_t>(rng.Below(50)));
        }
        const int64_t len = static_cast<int64_t>(prompt.size());
        const PagedKvCache::PrefixMatch match = cache.MatchPrefix(prompt);
        ASSERT_LE(match.tokens, len - 1);
        ASSERT_EQ(match.tokens % cfg.block_tokens, 0);
        const int64_t need =
            (len + cfg.block_tokens - 1) / cfg.block_tokens -
            static_cast<int64_t>(match.blocks.size());
        const bool fits = need <= cache.free_blocks();
        const int64_t seq = next_seq++;
        ASSERT_EQ(cache.AddSequenceSharing(seq, len, match), fits)
            << "seed=" << seed << " op=" << op;
        if (fits) {
          // Only the unmatched tail gets written; matched slots must already
          // hold this prompt's content (Check verifies exactly that).
          for (int64_t t = match.tokens; t < len; ++t) {
            FillSharedToken(&cache, seq, t, prompt[static_cast<size_t>(t)]);
          }
          cache.IndexPrefix(seq, prompt, len);
          shadow.content_[seq] = std::move(prompt);
        }
      } else if (kind < 6) {
        // Append: must copy-on-write when the target block is shared.
        auto it = shadow.content_.begin();
        std::advance(it, static_cast<int64_t>(rng.Below(
                             static_cast<uint64_t>(shadow.content_.size()))));
        const int64_t seq = it->first;
        const int64_t tokens = static_cast<int64_t>(it->second.size());
        const bool needs_block = tokens % cfg.block_tokens == 0;
        int32_t target_block = -1;
        bool shared_target = false;
        if (!needs_block) {
          target_block = (*cache.SequenceBlockList(seq))[static_cast<size_t>(
              tokens / cfg.block_tokens)];
          shared_target = cache.BlockRefCount(target_block) > 1;
        }
        const bool fits =
            (needs_block || shared_target) ? cache.free_blocks() > 0 : true;
        const int64_t cow_before = cache.cow_copies();
        const bool ok = cache.AppendToken(seq);
        ASSERT_EQ(ok, fits) << "seed=" << seed << " op=" << op;
        if (ok) {
          if (shared_target) {
            // The write may not land in the shared block: a private copy
            // must have been swapped in.
            const int32_t now_block = (*cache.SequenceBlockList(
                seq))[static_cast<size_t>(tokens / cfg.block_tokens)];
            ASSERT_NE(now_block, target_block);
            ASSERT_EQ(cache.cow_copies(), cow_before + 1);
          } else {
            ASSERT_EQ(cache.cow_copies(), cow_before);
          }
          const int32_t tok = static_cast<int32_t>(rng.Below(50));
          FillSharedToken(&cache, seq, tokens, tok);
          it->second.push_back(tok);
        } else {
          ASSERT_EQ(cache.SequenceTokens(seq), tokens);
        }
      } else if (kind < 8) {
        // Truncate (drops refs on released tail blocks).
        auto it = shadow.content_.begin();
        std::advance(it, static_cast<int64_t>(rng.Below(
                             static_cast<uint64_t>(shadow.content_.size()))));
        const int64_t keep = 1 + static_cast<int64_t>(rng.Below(
                                     static_cast<uint64_t>(it->second.size())));
        cache.TruncateSequence(it->first, keep);
        it->second.resize(static_cast<size_t>(keep));
      } else {
        // Remove ("cancel"): shared blocks must survive for other holders.
        auto it = shadow.content_.begin();
        std::advance(it, static_cast<int64_t>(rng.Below(
                             static_cast<uint64_t>(shadow.content_.size()))));
        cache.RemoveSequence(it->first);
        shadow.content_.erase(it);
      }
      shadow.Check(cache);
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }

    // Drain: every block comes back and the prefix index empties with them.
    while (!shadow.content_.empty()) {
      cache.RemoveSequence(shadow.content_.begin()->first);
      shadow.content_.erase(shadow.content_.begin());
      shadow.Check(cache);
    }
    EXPECT_EQ(cache.free_blocks(), cfg.num_blocks);
    EXPECT_EQ(cache.used_blocks(), 0);
    EXPECT_EQ(cache.WastedTokenSlots(), 0);
    EXPECT_EQ(cache.indexed_blocks(), 0);
  }
}

// Adopting a matched prefix then appending must never corrupt the sequences
// the blocks were adopted from (the copy-on-write contract, deterministically).
TEST(PagedKvPropertyTest, CopyOnWriteIsolatesDivergentAppends) {
  const PagedKvCacheConfig cfg = SmallCache();
  PagedKvCache cache(cfg);
  // Seed sequence: 9 tokens = 2 full blocks + 1 partial; index its prefix.
  std::vector<int32_t> prompt = {3, 1, 4, 1, 5, 9, 2, 6, 5};
  ASSERT_TRUE(cache.AddSequence(0, static_cast<int64_t>(prompt.size())));
  for (size_t t = 0; t < prompt.size(); ++t) {
    FillSharedToken(&cache, 0, static_cast<int64_t>(t), prompt[t]);
  }
  cache.IndexPrefix(0, prompt, static_cast<int64_t>(prompt.size()));
  EXPECT_EQ(cache.indexed_blocks(), 2);

  // Adopter shares both full blocks, writes only its last token.
  const PagedKvCache::PrefixMatch match = cache.MatchPrefix(prompt);
  ASSERT_EQ(match.tokens, 8);
  ASSERT_TRUE(cache.AddSequenceSharing(1, static_cast<int64_t>(prompt.size()), match));
  FillSharedToken(&cache, 1, 8, prompt[8]);
  EXPECT_EQ(cache.BlockRefCount(match.blocks[0]), 2);
  EXPECT_EQ(cache.BlockRefCount(match.blocks[1]), 2);

  // Truncate the adopter into the SHARED second block, then append a
  // divergent token there: copy-on-write must fire and the seed sequence
  // must keep reading its original content.
  cache.TruncateSequence(1, 6);
  ASSERT_TRUE(cache.AppendToken(1));
  EXPECT_EQ(cache.cow_copies(), 1);
  FillSharedToken(&cache, 1, 6, 42);
  for (size_t t = 0; t < prompt.size(); ++t) {
    for (int64_t layer = 0; layer < cfg.layers; ++layer) {
      for (int64_t r = 0; r < cfg.kv_dim; ++r) {
        EXPECT_EQ(cache.KRow(layer, 0, static_cast<int64_t>(t))[r],
                  SharedPatternK(prompt[t], static_cast<int64_t>(t), layer, r));
      }
    }
  }
  // The adopter's retained slots survived the copy; its divergent slot reads
  // back the new token.
  for (int64_t t = 0; t < 6; ++t) {
    EXPECT_EQ(cache.KRow(0, 1, t)[0],
              SharedPatternK(prompt[static_cast<size_t>(t)], t, 0, 0));
  }
  EXPECT_EQ(cache.KRow(0, 1, 6)[0], SharedPatternK(42, 6, 0, 0));
}

// --- Cross-pool migration fuzz ----------------------------------------------
//
// MigrateKvSequence is the disaggregated handoff primitive: a sequence's
// pages leave the prefill pool and land in the decode pool. The oracle runs
// TWO caches with independent shadows and randomly adds, appends, removes,
// and migrates in both directions. On top of each pool's own invariants
// (conservation, isolation, token counts, bit-exact rows) this enforces:
//   * Refcount conservation across pools: a migrated sequence's blocks are
//     released at the source and claimed at the target — never both, never
//     neither — so each pool's used+free always equals its total.
//   * No cross-pool aliasing: pools never share storage, so mutating one
//     pool after a handoff can never corrupt rows the other pool still
//     holds (every row of both pools is re-read after every op).
//   * Bit-exact transport: the Pattern oracle is keyed by (seq, token), not
//     by pool, so a migrated sequence must read back the same bits through
//     its new pages.
//   * A migration the target cannot hold fails cleanly: false, source
//     untouched.
//   * Full reclamation of both pools after a drain.
TEST(PagedKvPropertyTest, MigrationFuzzConservesBlocksAndBits) {
  for (uint64_t seed : {11ull, 12ull, 13ull, 14ull, 15ull}) {
    const PagedKvCacheConfig cfg = SmallCache();
    PagedKvCache pool_a(cfg);  // "prefill"
    PagedKvCache pool_b(cfg);  // "decode"
    Shadow shadow_a(cfg), shadow_b(cfg);
    Rng rng(seed);
    int64_t next_seq = 0;
    int64_t migrations = 0;

    auto check_both = [&]() {
      shadow_a.Check(pool_a);
      shadow_b.Check(pool_b);
    };

    for (int op = 0; op < 400; ++op) {
      const uint64_t kind = rng.Below(10);
      const bool pick_a = rng.Below(2) == 0;
      PagedKvCache& pool = pick_a ? pool_a : pool_b;
      Shadow& shadow = pick_a ? shadow_a : shadow_b;
      if (kind < 3 || (shadow_a.tokens_.empty() && shadow_b.tokens_.empty())) {
        const int64_t prompt = 1 + static_cast<int64_t>(rng.Below(20));
        const int64_t seq = next_seq++;
        const bool fits =
            (prompt + cfg.block_tokens - 1) / cfg.block_tokens <=
            pool.free_blocks();
        ASSERT_EQ(pool.AddSequence(seq, prompt), fits)
            << "seed=" << seed << " op=" << op;
        if (fits) {
          shadow.tokens_[seq] = prompt;
          for (int64_t t = 0; t < prompt; ++t) {
            FillToken(&pool, seq, t);
          }
        }
      } else if (kind < 6) {
        // Migrate a random live sequence to the other pool.
        Shadow& from_shadow = shadow_a.tokens_.empty() ? shadow_b
                              : shadow_b.tokens_.empty()
                                  ? shadow_a
                                  : (pick_a ? shadow_a : shadow_b);
        PagedKvCache& from = &from_shadow == &shadow_a ? pool_a : pool_b;
        PagedKvCache& to = &from_shadow == &shadow_a ? pool_b : pool_a;
        Shadow& to_shadow = &from_shadow == &shadow_a ? shadow_b : shadow_a;
        auto it = from_shadow.tokens_.begin();
        std::advance(it, static_cast<int64_t>(rng.Below(static_cast<uint64_t>(
                             from_shadow.tokens_.size()))));
        const int64_t seq = it->first;
        const int64_t tokens = it->second;
        const bool fits =
            (tokens + cfg.block_tokens - 1) / cfg.block_tokens <=
            to.free_blocks();
        ASSERT_EQ(MigrateKvSequence(&from, &to, seq), fits)
            << "seed=" << seed << " op=" << op;
        if (fits) {
          to_shadow.tokens_[seq] = tokens;
          from_shadow.tokens_.erase(it);
          ++migrations;
        } else {
          // Failed handoff leaves the source holding the sequence.
          ASSERT_EQ(from.SequenceTokens(seq), tokens);
        }
      } else if (kind < 8 && !shadow.tokens_.empty()) {
        auto it = shadow.tokens_.begin();
        std::advance(it, static_cast<int64_t>(rng.Below(
                             static_cast<uint64_t>(shadow.tokens_.size()))));
        const bool needs_block = it->second % cfg.block_tokens == 0;
        const bool fits = !needs_block || pool.free_blocks() > 0;
        ASSERT_EQ(pool.AppendToken(it->first), fits)
            << "seed=" << seed << " op=" << op;
        if (fits) {
          FillToken(&pool, it->first, it->second);
          it->second += 1;
        }
      } else if (!shadow.tokens_.empty()) {
        auto it = shadow.tokens_.begin();
        std::advance(it, static_cast<int64_t>(rng.Below(
                             static_cast<uint64_t>(shadow.tokens_.size()))));
        pool.RemoveSequence(it->first);
        shadow.tokens_.erase(it);
      }
      check_both();
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
    EXPECT_GT(migrations, 10) << "seed=" << seed;  // the fuzz actually migrated

    // Drain both pools: every block comes back on both sides.
    while (!shadow_a.tokens_.empty()) {
      pool_a.RemoveSequence(shadow_a.tokens_.begin()->first);
      shadow_a.tokens_.erase(shadow_a.tokens_.begin());
    }
    while (!shadow_b.tokens_.empty()) {
      pool_b.RemoveSequence(shadow_b.tokens_.begin()->first);
      shadow_b.tokens_.erase(shadow_b.tokens_.begin());
    }
    check_both();
    for (PagedKvCache* pool : {&pool_a, &pool_b}) {
      EXPECT_EQ(pool->free_blocks(), cfg.num_blocks);
      EXPECT_EQ(pool->used_blocks(), 0);
      EXPECT_EQ(pool->WastedTokenSlots(), 0);
    }
  }
}

// Growth across a block boundary must not move data already written — the
// page table grows, the rows stay put.
TEST(PagedKvPropertyTest, AppendAcrossBlockBoundaryKeepsEarlierRows) {
  const PagedKvCacheConfig cfg = SmallCache();
  PagedKvCache cache(cfg);
  ASSERT_TRUE(cache.AddSequence(7, cfg.block_tokens));  // exactly one block
  for (int64_t t = 0; t < cfg.block_tokens; ++t) {
    FillToken(&cache, 7, t);
  }
  const float* before = cache.KRow(0, 7, 0);
  ASSERT_TRUE(cache.AppendToken(7));  // forces a second block
  FillToken(&cache, 7, cfg.block_tokens);
  EXPECT_EQ(cache.KRow(0, 7, 0), before);
  for (int64_t t = 0; t <= cfg.block_tokens; ++t) {
    for (int64_t layer = 0; layer < cfg.layers; ++layer) {
      for (int64_t r = 0; r < cfg.kv_dim; ++r) {
        EXPECT_EQ(cache.KRow(layer, 7, t)[r], PatternK(7, t, layer, r));
        EXPECT_EQ(cache.VRow(layer, 7, t)[r], PatternV(7, t, layer, r));
      }
    }
  }
}

}  // namespace
}  // namespace spinfer
