#include "src/gpusim/l2_cache.h"

#include <gtest/gtest.h>

namespace spinfer {
namespace {

L2Config SmallCache() {
  L2Config cfg;
  cfg.capacity_bytes = 64 << 10;  // 64 KB, 128B lines, 16 ways -> 32 sets
  return cfg;
}

TEST(L2CacheTest, ColdMissesThenHits) {
  L2Cache cache(SmallCache());
  const uint64_t missed = cache.Read(0, 4096);
  EXPECT_EQ(missed, 4096u);  // cold: every line from DRAM
  const uint64_t again = cache.Read(0, 4096);
  EXPECT_EQ(again, 0u);  // warm: fully cached
  EXPECT_GT(cache.HitRate(), 0.49);
}

TEST(L2CacheTest, CapacityEviction) {
  L2Cache cache(SmallCache());
  cache.Read(0, 64 << 10);        // fill exactly
  cache.Read(1 << 20, 64 << 10);  // evict everything
  const uint64_t missed = cache.Read(0, 64 << 10);
  EXPECT_EQ(missed, 64u << 10);  // original data gone
}

TEST(L2CacheTest, DirtyWritebackOnEviction) {
  L2Cache cache(SmallCache());
  cache.Write(0, 64 << 10);  // fill with dirty lines
  EXPECT_EQ(cache.dram_write_bytes(), 0u);
  cache.Read(1 << 20, 64 << 10);  // force eviction of dirty lines
  EXPECT_EQ(cache.dram_write_bytes(), 64u << 10);
}

TEST(L2CacheTest, PartialLineCountsWholeLine) {
  L2Cache cache(SmallCache());
  const uint64_t missed = cache.Read(130, 4);  // 4 bytes inside line 1
  EXPECT_EQ(missed, 128u);
}

// The kernels' X-reuse assumption: at decode-phase sizes, X (k*n*2 bytes)
// fits the RTX4090's 72MB L2, so re-reads by later thread-block rows are
// hits — DRAM sees X approximately once.
TEST(L2CacheTest, DecodePhaseXIsReadFromDramOnce) {
  L2Cache cache;  // RTX4090 default
  const uint64_t x_bytes = 8192 * 16 * 2;  // K=8192, N=16
  const int block_rows = 64;
  uint64_t dram = 0;
  for (int br = 0; br < block_rows; ++br) {
    dram += cache.Read(0, x_bytes);
  }
  EXPECT_EQ(dram, x_bytes);  // one cold pass, 63 warm passes
}

// The assumption breaks at prefill N: X outgrows L2 and re-reads stream
// from DRAM — consistent with the paper's compute/memory regime shift.
TEST(L2CacheTest, HugeXThrashes) {
  L2Config cfg;
  cfg.capacity_bytes = 1 << 20;  // 1MB toy L2 for test speed
  L2Cache cache(cfg);
  const uint64_t x_bytes = 4 << 20;  // 4x the cache
  const uint64_t first = cache.Read(0, x_bytes);
  const uint64_t second = cache.Read(0, x_bytes);
  EXPECT_EQ(first, x_bytes);
  EXPECT_EQ(second, x_bytes);  // LRU over a sequential scan: zero reuse
}

}  // namespace
}  // namespace spinfer
