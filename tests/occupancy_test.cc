#include "src/gpusim/occupancy.h"

#include <gtest/gtest.h>

#include "src/core/spinfer_kernel.h"

namespace spinfer {
namespace {

TEST(OccupancyTest, UnconstrainedHitsBlockSlotLimit) {
  KernelResources res;
  res.registers_per_thread = 16;
  res.smem_bytes_per_block = 128;
  res.threads_per_block = 32;
  const OccupancyResult occ = ComputeOccupancy(res, Rtx4090());
  EXPECT_EQ(occ.blocks_per_sm, kMaxBlocksPerSm);
  EXPECT_EQ(occ.limiter, OccupancyResult::Limiter::kBlockSlots);
}

TEST(OccupancyTest, RegisterLimited) {
  KernelResources res;
  res.registers_per_thread = 128;  // 128 * 256 = 32768 regs per block
  res.smem_bytes_per_block = 1024;
  res.threads_per_block = 256;
  const OccupancyResult occ = ComputeOccupancy(res, Rtx4090());
  EXPECT_EQ(occ.blocks_per_sm, 2);  // 65536 / 32768
  EXPECT_EQ(occ.limiter, OccupancyResult::Limiter::kRegisters);
  EXPECT_EQ(occ.warps_per_sm, 16);
  EXPECT_NEAR(occ.occupancy, 16.0 / 48.0, 1e-9);
}

TEST(OccupancyTest, SharedMemoryLimited) {
  KernelResources res;
  res.registers_per_thread = 32;
  res.smem_bytes_per_block = 40 << 10;  // 40 KB of 100 KB
  res.threads_per_block = 128;
  const OccupancyResult occ = ComputeOccupancy(res, Rtx4090());
  EXPECT_EQ(occ.blocks_per_sm, 2);
  EXPECT_EQ(occ.limiter, OccupancyResult::Limiter::kSharedMemory);
}

TEST(OccupancyTest, WarpSlotLimited) {
  KernelResources res;
  res.registers_per_thread = 16;
  res.smem_bytes_per_block = 64;
  res.threads_per_block = 1024;  // 32 warps per block
  const OccupancyResult occ = ComputeOccupancy(res, Rtx4090());
  EXPECT_EQ(occ.blocks_per_sm, 1);  // 48 / 32
  EXPECT_EQ(occ.limiter, OccupancyResult::Limiter::kWarpSlots);
}

TEST(OccupancyTest, ImpossibleLaunch) {
  KernelResources res;
  res.registers_per_thread = 200;
  res.smem_bytes_per_block = 200 << 10;  // exceeds the SM
  res.threads_per_block = 128;
  const OccupancyResult occ = ComputeOccupancy(res, Rtx4090());
  EXPECT_EQ(occ.blocks_per_sm, 0);
  EXPECT_EQ(occ.occupancy, 0.0);
}

// The register-economy argument from Fig. 12: SMBD's lower register count
// admits more resident blocks than the no-SMBD register-staging variant.
TEST(OccupancyTest, SmbdEnablesHigherOccupancy) {
  SpInferKernelConfig with;
  SpInferKernelConfig without;
  without.smbd = false;
  const SpInferSpmmKernel a(with);
  const SpInferSpmmKernel b(without);
  const OccupancyResult occ_with = ComputeOccupancy(a.Resources(0.6, 16), Rtx4090());
  const OccupancyResult occ_without = ComputeOccupancy(b.Resources(0.6, 16), Rtx4090());
  EXPECT_GT(occ_with.warps_per_sm, occ_without.warps_per_sm);
}

TEST(OccupancyTest, LargeGroupTilesCostSharedMemory) {
  SpInferKernelConfig small;
  small.format.gt_rows = 32;
  small.format.gt_cols = 32;
  SpInferKernelConfig large;
  large.format.gt_rows = 128;
  large.format.gt_cols = 128;
  const auto res_small = SpInferSpmmKernel(small).Resources(0.5, 16);
  const auto res_large = SpInferSpmmKernel(large).Resources(0.5, 16);
  EXPECT_GT(res_large.smem_bytes_per_block, 4 * res_small.smem_bytes_per_block);
}

}  // namespace
}  // namespace spinfer
